package strabon

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/rdf"
	"repro/internal/stsparql"
)

// Result serialisation in the two formats the endpoint speaks: SPARQL
// 1.1 Query Results JSON and W3C TSV. Both are written row by row
// through RowWriter, so the endpoint (and cmd/stsparql) can encode a
// cursor's rows as they are pulled instead of materialising the result;
// WriteResultJSON / WriteResultTSV remain as materialised-result
// wrappers.

// RowWriter encodes one result set incrementally: any prologue (JSON
// head, TSV header line) is written with the first row — or by End for
// an empty result — and End closes the document.
type RowWriter interface {
	Row(stsparql.Binding) error
	End() error
}

// jsonTerm is one RDF term in the SPARQL results JSON format.
type jsonTerm struct {
	Type     string `json:"type"` // "uri" | "literal" | "bnode"
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

func termToJSON(t rdf.Term) jsonTerm {
	switch {
	case t.IsIRI():
		return jsonTerm{Type: "uri", Value: t.Value}
	case t.IsBlank():
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
}

type jsonRowWriter struct {
	w       io.Writer
	vars    []string
	started bool
	first   bool
}

// NewJSONRowWriter returns a RowWriter emitting the SPARQL 1.1 Query
// Results JSON format.
func NewJSONRowWriter(w io.Writer, vars []string) RowWriter {
	return &jsonRowWriter{w: w, vars: vars, first: true}
}

func (jw *jsonRowWriter) begin() error {
	if jw.started {
		return nil
	}
	jw.started = true
	head, err := json.Marshal(jw.vars)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(jw.w, `{"head":{"vars":%s},"results":{"bindings":[`, head)
	return err
}

func (jw *jsonRowWriter) Row(row stsparql.Binding) error {
	if err := jw.begin(); err != nil {
		return err
	}
	b := make(map[string]jsonTerm, len(jw.vars))
	for _, v := range jw.vars {
		if t, ok := row[v]; ok && !t.IsZero() {
			b[v] = termToJSON(t)
		}
	}
	doc, err := json.Marshal(b)
	if err != nil {
		return err
	}
	if !jw.first {
		if _, err := io.WriteString(jw.w, ","); err != nil {
			return err
		}
	}
	jw.first = false
	_, err = jw.w.Write(doc)
	return err
}

func (jw *jsonRowWriter) End() error {
	if err := jw.begin(); err != nil {
		return err
	}
	_, err := io.WriteString(jw.w, "]}}\n")
	return err
}

type tsvRowWriter struct {
	w       io.Writer
	vars    []string
	started bool
	cols    []string
}

// NewTSVRowWriter returns a RowWriter emitting the W3C SPARQL TSV
// format: a header of ?var names, then one N-Triples-encoded term per
// column.
func NewTSVRowWriter(w io.Writer, vars []string) RowWriter {
	return &tsvRowWriter{w: w, vars: vars, cols: make([]string, len(vars))}
}

func (tw *tsvRowWriter) begin() error {
	if tw.started {
		return nil
	}
	tw.started = true
	for i, v := range tw.vars {
		tw.cols[i] = "?" + v
	}
	_, err := fmt.Fprintln(tw.w, strings.Join(tw.cols, "\t"))
	return err
}

func (tw *tsvRowWriter) Row(row stsparql.Binding) error {
	if err := tw.begin(); err != nil {
		return err
	}
	for i, v := range tw.vars {
		tw.cols[i] = ""
		if t, ok := row[v]; ok && !t.IsZero() {
			tw.cols[i] = t.String()
		}
	}
	_, err := fmt.Fprintln(tw.w, strings.Join(tw.cols, "\t"))
	return err
}

func (tw *tsvRowWriter) End() error { return tw.begin() }

// WriteResultJSON writes a materialised result set in the SPARQL 1.1
// Query Results JSON format.
func WriteResultJSON(w io.Writer, res *stsparql.Result) error {
	return writeRows(NewJSONRowWriter(w, res.Vars), res.Rows)
}

// WriteResultTSV writes a materialised result set in the W3C SPARQL TSV
// format.
func WriteResultTSV(w io.Writer, res *stsparql.Result) error {
	return writeRows(NewTSVRowWriter(w, res.Vars), res.Rows)
}

func writeRows(rw RowWriter, rows []stsparql.Binding) error {
	for _, row := range rows {
		if err := rw.Row(row); err != nil {
			return err
		}
	}
	return rw.End()
}
