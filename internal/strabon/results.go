package strabon

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/rdf"
	"repro/internal/stsparql"
)

// Result serialisation in the two formats the endpoint speaks: SPARQL
// 1.1 Query Results JSON and W3C TSV. Both are also used by the
// cmd/stsparql command-line client.

// jsonTerm is one RDF term in the SPARQL results JSON format.
type jsonTerm struct {
	Type     string `json:"type"` // "uri" | "literal" | "bnode"
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

func termToJSON(t rdf.Term) jsonTerm {
	switch {
	case t.IsIRI():
		return jsonTerm{Type: "uri", Value: t.Value}
	case t.IsBlank():
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
}

// WriteResultJSON writes a result set in the SPARQL 1.1 Query Results
// JSON format.
func WriteResultJSON(w io.Writer, res *stsparql.Result) error {
	type bindings struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	}
	doc := struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results bindings `json:"results"`
	}{}
	doc.Head.Vars = res.Vars
	doc.Results.Bindings = make([]map[string]jsonTerm, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(map[string]jsonTerm, len(res.Vars))
		for _, v := range res.Vars {
			if t, ok := row[v]; ok && !t.IsZero() {
				b[v] = termToJSON(t)
			}
		}
		doc.Results.Bindings = append(doc.Results.Bindings, b)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteResultTSV writes a result set in the W3C SPARQL TSV format: a
// header of ?var names, then one N-Triples-encoded term per column.
func WriteResultTSV(w io.Writer, res *stsparql.Result) error {
	cols := make([]string, len(res.Vars))
	for i, v := range res.Vars {
		cols[i] = "?" + v
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, "\t")); err != nil {
		return err
	}
	for _, row := range res.Rows {
		for i, v := range res.Vars {
			cols[i] = ""
			if t, ok := row[v]; ok && !t.IsZero() {
				cols[i] = t.String()
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cols, "\t")); err != nil {
			return err
		}
	}
	return nil
}
