package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/auxdata"
	"repro/internal/products"
	"repro/internal/refine"
	"repro/internal/seviri"
	"repro/internal/strabon"
	"repro/internal/vault"
)

// AcquisitionReport records one serviced acquisition: the Figure 3
// pipeline end to end, with the timings the evaluation section reports.
type AcquisitionReport struct {
	Sensor     string
	At         time.Time
	RawHotspot int // hotspots from the chain (plain product)
	Refined    int // hotspots surviving refinement
	ChainTime  time.Duration
	RefineOps  []refine.Timing
	// DeadlineMet reports whether chain + refinement finished within the
	// sensor cadence ("both ... need to finish in less than 5 minutes").
	DeadlineMet bool
}

// Service is the operational fire-monitoring service: simulator-fed
// ingestion, SciQL chain, Strabon refinement and product dissemination.
type Service struct {
	Sim     *seviri.Simulator
	Vault   *vault.Vault
	Chain   Chain
	Strabon strabon.API
	Refiner *refine.Runner

	// NewChain builds a processing chain private to one pipeline worker;
	// chains own a SciQL engine whose catalog must not be shared across
	// goroutines. When nil, RunWindow falls back to the shared Chain and
	// must then run with Workers=1.
	NewChain func() Chain

	// Workers bounds the acquisition pipeline's concurrency; 0 means
	// runtime.NumCPU(). See pipeline.go.
	Workers int
	// FlushBatch caps how many in-order products the pipeline writer
	// commits per batched store flush; 0 means the default.
	FlushBatch int

	// Segments is the per-acquisition HRIT segment count.
	Segments int
	// Compress enables the wavelet stage of the synthetic downlink.
	Compress bool

	// Metrics, when set (NewPipelineMetrics), exports per-stage timings
	// and flush batch sizes; nil disables instrumentation.
	Metrics *PipelineMetrics

	Reports []AcquisitionReport
	// PlainProducts retains each acquisition's pre-refinement product for
	// the Table 1 comparison.
	PlainProducts []*products.Product
}

// NewService assembles the full stack over a world seed: synthetic
// geography, fire scenario, simulator, vault, SciQL chain, and a Strabon
// store pre-loaded with every auxiliary dataset.
func NewService(seed int64, cfg seviri.ScenarioConfig) (*Service, error) {
	return NewServiceWithStore(seed, cfg, strabon.New())
}

// NewServiceWithStore assembles the stack over a caller-provided Strabon
// backend — the hook the serving binaries use to run the service over a
// sharded store (-shards N). The auxiliary world datasets are loaded
// into st.
func NewServiceWithStore(seed int64, cfg seviri.ScenarioConfig, st strabon.API) (*Service, error) {
	world := auxdata.Generate(seed)
	scenario := seviri.GenerateScenario(world, seed+1, cfg)
	sim := seviri.NewSimulator(scenario)

	// The vault cache must hold both channels of every in-flight
	// acquisition, so size it for the pipeline's worker fan-out.
	v := vault.New(max(8, 4*runtime.NumCPU()))
	chain := NewSciQLChain(v, sim.Transform())

	st.LoadTriples(world.AllTriples())

	return &Service{
		Sim:      sim,
		Vault:    v,
		Chain:    chain,
		NewChain: func() Chain { return NewSciQLChain(v, sim.Transform()) },
		Strabon:  st,
		Refiner:  refine.NewRunner(st),
		Segments: 4,
		Compress: true,
	}, nil
}

// Step services one acquisition: downlink simulation, vault attach,
// processing chain, refinement.
func (s *Service) Step(sensor seviri.Sensor, at time.Time) (*AcquisitionReport, error) {
	product, chainTime, err := s.frontHalf(s.Chain, sensor, at)
	if err != nil {
		return nil, err
	}
	s.PlainProducts = append(s.PlainProducts, product)

	timings, err := s.Refiner.RunAll(product)
	if err != nil {
		return nil, err
	}
	refined, err := s.Refiner.CurrentHotspots(at)
	if err != nil {
		return nil, err
	}

	var total time.Duration
	for _, t := range timings {
		total += t.Duration
	}
	rep := &AcquisitionReport{
		Sensor:      sensor.Name,
		At:          at,
		RawHotspot:  len(product.Hotspots),
		Refined:     len(refined.Rows),
		ChainTime:   chainTime,
		RefineOps:   timings,
		DeadlineMet: chainTime+total < sensor.Cadence,
	}
	s.Reports = append(s.Reports, *rep)
	return rep, nil
}

// RunWindow services every acquisition of a sensor over a time window.
// With Workers >= 2 it runs the concurrent pipeline (see pipeline.go):
// front halves stream through a bounded worker pool while an ordered
// writer batches store flushes and refinement. Workers == 1 requests the
// plain sequential loop, the pipeline-off baseline. Either way, reports
// and products accumulate in acquisition order and the refined output is
// identical.
func (s *Service) RunWindow(sensor seviri.Sensor, from time.Time, span time.Duration) error {
	// Without a chain factory the workers would share one SciQL engine,
	// whose catalog is not safe for concurrent mutation — fall back to
	// the sequential loop rather than race.
	if s.workers() <= 1 || s.NewChain == nil {
		return s.RunWindowSequential(sensor, from, span)
	}
	return s.runPipeline(sensor, seviri.AcquisitionTimes(sensor, from, span))
}

// RunWindowSequential services a window one acquisition at a time on the
// calling goroutine — the pre-pipeline behaviour, kept as the plainest
// possible reference implementation.
func (s *Service) RunWindowSequential(sensor seviri.Sensor, from time.Time, span time.Duration) error {
	for _, t := range seviri.AcquisitionTimes(sensor, from, span) {
		if _, err := s.Step(sensor, t); err != nil {
			return err
		}
	}
	return nil
}

// RefinedProducts extracts the post-refinement product of every serviced
// acquisition from the Strabon store (the Table 1 "after refinement"
// variant).
func (s *Service) RefinedProducts() ([]*products.Product, error) {
	var out []*products.Product
	for _, plain := range s.PlainProducts {
		res, err := s.Refiner.CurrentHotspots(plain.AcquiredAt)
		if err != nil {
			return nil, err
		}
		p := &products.Product{
			Sensor:     plain.Sensor,
			Chain:      plain.Chain + "+refined",
			AcquiredAt: plain.AcquiredAt,
		}
		for i, row := range res.Rows {
			g, err := rowGeometry(row["g"].Value)
			if err != nil {
				continue
			}
			conf, _ := row["conf"].Float()
			p.Hotspots = append(p.Hotspots, products.Hotspot{
				ID:         fmt.Sprintf("refined_%d_%s", i, plain.AcquiredAt.Format("150405")),
				Geometry:   g,
				Confidence: conf,
				AcquiredAt: plain.AcquiredAt,
				Sensor:     plain.Sensor,
				Chain:      p.Chain,
				Producer:   "noa",
			})
		}
		out = append(out, p)
	}
	return out, nil
}
