package core

import (
	"time"

	"repro/internal/obs"
)

// PipelineMetrics instruments the acquisition pipeline for /metrics:
// per-stage wall-time histograms (acquire, ingest, chain, flush,
// refine) and the distribution of products per batched store flush.
// All instruments are atomics shared safely by the worker pool; a nil
// *PipelineMetrics disables everything at the cost of one nil check
// per stage.
type PipelineMetrics struct {
	stage      *obs.HistogramVec // core_pipeline_stage_seconds{stage}
	flushBatch *obs.Histogram    // core_pipeline_flush_products
}

// NewPipelineMetrics registers the pipeline's instrument families.
func NewPipelineMetrics(reg *obs.Registry) *PipelineMetrics {
	return &PipelineMetrics{
		stage: reg.NewHistogramVec("core_pipeline_stage_seconds",
			"Acquisition pipeline stage wall time (acquire, ingest, chain, flush, refine).",
			[]string{"stage"}, nil),
		flushBatch: reg.NewHistogram("core_pipeline_flush_products",
			"Products committed per batched store flush.",
			[]float64{1, 2, 4, 8, 16}),
	}
}

// observe records one stage execution.
func (m *PipelineMetrics) observe(stage string, d time.Duration) {
	if m == nil {
		return
	}
	m.stage.With(stage).Observe(d.Seconds())
}

// observeFlush records one flush's batch size.
func (m *PipelineMetrics) observeFlush(products int) {
	if m == nil {
		return
	}
	m.flushBatch.Observe(float64(products))
}
