package core

import (
	"testing"
	"time"

	"repro/internal/refine"
	"repro/internal/seviri"
)

// newTestService builds a small service over a fixed seed.
func newTestService(t *testing.T) *Service {
	t.Helper()
	cfg := seviri.DefaultScenarioConfig()
	cfg.Days = 1
	cfg.FiresPerDay = 5
	cfg.ArtifactsPerDay = 3
	s, err := NewService(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServiceStepEndToEnd(t *testing.T) {
	s := newTestService(t)
	// Midday of the scenario's first day: fires are burning.
	at := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	rep, err := s.Step(seviri.MSG1, at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RawHotspot == 0 {
		t.Fatal("chain detected no hotspots at scenario midday")
	}
	if len(rep.RefineOps) != len(refine.AllOps) {
		t.Fatalf("refinement ran %d ops", len(rep.RefineOps))
	}
	if !rep.DeadlineMet {
		t.Fatalf("missed the %v deadline: chain %v", seviri.MSG1.Cadence, rep.ChainTime)
	}
	if rep.Refined > rep.RawHotspot {
		// Refinement can only add via time-persistence, which needs an
		// hour of history; the first acquisition cannot grow.
		t.Fatalf("first acquisition grew: %d -> %d", rep.RawHotspot, rep.Refined)
	}
}

func TestSciQLAndLegacyChainsAgree(t *testing.T) {
	s := newTestService(t)
	at := time.Date(2007, 8, 24, 12, 30, 0, 0, time.UTC)
	acq, err := s.Sim.Acquire(seviri.MSG1, at, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := IngestAcquisition(s.Vault, acq); err != nil {
		t.Fatal(err)
	}
	sciqlProd, err := s.Chain.Process("MSG1", at)
	if err != nil {
		t.Fatal(err)
	}
	legacy := NewLegacyChain(s.Vault, s.Sim.Transform())
	legacyProd, err := legacy.Process("MSG1", at)
	if err != nil {
		t.Fatal(err)
	}
	if len(sciqlProd.Hotspots) != len(legacyProd.Hotspots) {
		t.Fatalf("chains disagree: sciql %d vs legacy %d hotspots",
			len(sciqlProd.Hotspots), len(legacyProd.Hotspots))
	}
	for i := range sciqlProd.Hotspots {
		a := sciqlProd.Hotspots[i].Geometry.Centroid()
		b := legacyProd.Hotspots[i].Geometry.Centroid()
		if !a.Equals(b) {
			t.Fatalf("hotspot %d at %v vs %v", i, a, b)
		}
	}
}

func TestRefinementDeletesSeaHotspots(t *testing.T) {
	s := newTestService(t)
	// A glint-heavy midday acquisition.
	at := time.Date(2007, 8, 24, 11, 0, 0, 0, time.UTC)
	rep, err := s.Step(seviri.MSG1, at)
	if err != nil {
		t.Fatal(err)
	}
	// Count plain hotspots entirely in the sea.
	world := s.Sim.Scenario.World
	seaPlain := 0
	for _, h := range s.PlainProducts[0].Hotspots {
		if !world.LandAt(h.Geometry.Centroid()) {
			corners := 0
			for _, c := range h.Geometry.Shell[:4] {
				if world.LandAt(c) {
					corners++
				}
			}
			if corners == 0 {
				seaPlain++
			}
		}
	}
	// After refinement no surviving hotspot may be fully at sea.
	res, err := s.Refiner.CurrentHotspots(at)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		g, err := rowGeometry(row["g"].Value)
		if err != nil {
			t.Fatal(err)
		}
		c := g.Centroid()
		onLand := world.LandAt(c)
		if !onLand {
			for _, v := range g.Shell {
				if world.LandAt(v) {
					onLand = true
					break
				}
			}
		}
		if !onLand {
			t.Fatalf("sea hotspot survived refinement at %v (plain sea hotspots: %d)", c, seaPlain)
		}
	}
	_ = rep
}

func TestRunWindowAccumulatesReports(t *testing.T) {
	s := newTestService(t)
	from := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	if err := s.RunWindow(seviri.MSG2, from, 45*time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(s.Reports) != 3 {
		t.Fatalf("reports = %d, want 3 (15-min cadence over 45 min)", len(s.Reports))
	}
	ref, err := s.RefinedProducts()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 3 {
		t.Fatalf("refined products = %d", len(ref))
	}
}

func TestVaultLazinessInService(t *testing.T) {
	s := newTestService(t)
	at := time.Date(2007, 8, 24, 13, 0, 0, 0, time.UTC)
	acq, err := s.Sim.Acquire(seviri.MSG1, at, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := IngestAcquisition(s.Vault, acq); err != nil {
		t.Fatal(err)
	}
	if s.Vault.Stats().Loads != 0 {
		t.Fatal("attach must not materialise arrays")
	}
	if _, err := s.Chain.Process("MSG1", at); err != nil {
		t.Fatal(err)
	}
	if s.Vault.Stats().Loads == 0 {
		t.Fatal("processing should trigger lazy loads")
	}
}
