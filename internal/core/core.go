package core

import (
	"fmt"

	"repro/internal/geom"
)

// rowGeometry parses a refined hotspot geometry, accepting any area WKT
// (refinement may have clipped a pixel square into a multipolygon).
func rowGeometry(wkt string) (geom.Polygon, error) {
	g, err := geom.ParseWKT(wkt)
	if err != nil {
		return geom.Polygon{}, err
	}
	switch v := g.(type) {
	case geom.Polygon:
		return v, nil
	case geom.MultiPolygon:
		if len(v) == 0 {
			return geom.Polygon{}, fmt.Errorf("core: empty refined geometry")
		}
		// Keep the largest member; the validation protocol operates on
		// single footprints.
		best := v[0]
		for _, p := range v[1:] {
			if p.Area() > best.Area() {
				best = p
			}
		}
		return best, nil
	default:
		return geom.Polygon{}, fmt.Errorf("core: refined geometry is %s, want area", g.Kind())
	}
}
