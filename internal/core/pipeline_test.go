package core

import (
	"testing"
	"time"

	"repro/internal/refine"
	"repro/internal/seviri"
)

// runWindowWith services the same scenario window with a given worker
// count and returns the service for inspection.
func runWindowWith(t *testing.T, workers int, span time.Duration) *Service {
	t.Helper()
	s := newTestService(t)
	s.Workers = workers
	from := time.Date(2007, 8, 24, 11, 30, 0, 0, time.UTC)
	if err := s.RunWindow(seviri.MSG1, from, span); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPipelineMatchesSequential is the pipeline's determinism contract:
// a Workers=8 run must produce the same refined product set, in the same
// acquisition order, as a Workers=1 run and as the plain sequential loop.
// Under -race this doubles as the concurrency stress test for the worker
// pool, the batching writer, the scoped refinement fan-out and the
// strabon read/write lock discipline.
func TestPipelineMatchesSequential(t *testing.T) {
	const span = 30 * time.Minute // six MSG1 acquisitions

	seq := newTestService(t)
	from := time.Date(2007, 8, 24, 11, 30, 0, 0, time.UTC)
	if err := seq.RunWindowSequential(seviri.MSG1, from, span); err != nil {
		t.Fatal(err)
	}
	one := runWindowWith(t, 1, span)
	eight := runWindowWith(t, 8, span)

	if len(seq.Reports) == 0 {
		t.Fatal("sequential run produced no reports")
	}
	for name, s := range map[string]*Service{"workers=1": one, "workers=8": eight} {
		if len(s.Reports) != len(seq.Reports) {
			t.Fatalf("%s: %d reports, sequential %d", name, len(s.Reports), len(seq.Reports))
		}
		for i, rep := range s.Reports {
			want := seq.Reports[i]
			if !rep.At.Equal(want.At) {
				t.Fatalf("%s: report %d at %v, sequential %v", name, i, rep.At, want.At)
			}
			if rep.RawHotspot != want.RawHotspot || rep.Refined != want.Refined {
				t.Fatalf("%s: report %d raw/refined = %d/%d, sequential %d/%d",
					name, i, rep.RawHotspot, rep.Refined, want.RawHotspot, want.Refined)
			}
			if len(rep.RefineOps) != len(refine.AllOps) {
				t.Fatalf("%s: report %d ran %d refine ops", name, i, len(rep.RefineOps))
			}
		}

		// The refined product sets must be identical hotspot for hotspot.
		wantProducts, err := seq.RefinedProducts()
		if err != nil {
			t.Fatal(err)
		}
		gotProducts, err := s.RefinedProducts()
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := SortedHotspotKeys(wantProducts)
		gotKeys := SortedHotspotKeys(gotProducts)
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("%s: %d refined hotspots, sequential %d", name, len(gotKeys), len(wantKeys))
		}
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("%s: refined hotspot %d = %q, sequential %q", name, i, gotKeys[i], wantKeys[i])
			}
		}
		if s.Strabon.Len() != seq.Strabon.Len() {
			t.Fatalf("%s: store has %d triples, sequential %d", name, s.Strabon.Len(), seq.Strabon.Len())
		}
	}
}

// TestPipelineFlushBatching pins that the writer actually batches: with a
// flush cap of 1 every product still lands, and with a large cap the run
// stays correct when whole windows collapse into single flushes.
func TestPipelineFlushBatching(t *testing.T) {
	for _, flush := range []int{1, 16} {
		s := newTestService(t)
		s.Workers = 4
		s.FlushBatch = flush
		from := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
		if err := s.RunWindow(seviri.MSG1, from, 15*time.Minute); err != nil {
			t.Fatalf("flush=%d: %v", flush, err)
		}
		if len(s.Reports) != 3 {
			t.Fatalf("flush=%d: reports = %d, want 3", flush, len(s.Reports))
		}
		for i, rep := range s.Reports {
			if rep.RawHotspot == 0 {
				t.Fatalf("flush=%d: report %d detected nothing", flush, i)
			}
		}
	}
}

// TestPipelineWorkerChainIsolation ensures every worker gets a private
// chain when a factory is configured, by running enough concurrent
// acquisitions that a shared SciQL catalog would race on its fixed
// array names (caught by -race, and usually by wrong hotspot counts).
func TestPipelineWorkerChainIsolation(t *testing.T) {
	s := runWindowWith(t, 8, 40*time.Minute)
	if len(s.Reports) != 8 {
		t.Fatalf("reports = %d, want 8", len(s.Reports))
	}
	for i := 1; i < len(s.Reports); i++ {
		if !s.Reports[i].At.After(s.Reports[i-1].At) {
			t.Fatalf("reports out of order at %d: %v !> %v", i, s.Reports[i].At, s.Reports[i-1].At)
		}
	}
}
