// Package core is the paper's primary contribution as a library: the
// TELEIOS fire-monitoring service of Figure 3. It wires the data vault
// and the SciQL engine (the MonetDB side) to the processing chain —
// ingestion, cropping, georeferencing, classification, vectorisation —
// and feeds the resulting products through RDF-ization and the stSPARQL
// refinement step against Strabon, honouring the 5-/15-minute real-time
// deadlines of the MSG acquisition streams.
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/array"
	"repro/internal/detect"
	"repro/internal/georef"
	"repro/internal/hrit"
	"repro/internal/products"
	"repro/internal/sciql"
	"repro/internal/seviri"
	"repro/internal/solar"
	"repro/internal/vault"
)

// Chain is a processing chain turning one raw acquisition into a hotspot
// product.
type Chain interface {
	// Name labels the chain in products and benchmarks.
	Name() string
	// Process runs the full chain for one (sensor, timestamp) acquisition
	// whose segments are already attached to the vault.
	Process(sensor string, at time.Time) (*products.Product, error)
}

// cropWindow computes the raw-grid rectangle covering the destination
// region (plus margin) — the chain's range query ("cropping the image to
// keep only the area of interest").
func cropWindow(tr georef.Transform) (x0, x1, y0, y1 int) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, c := range [][2]float64{
		{0, 0},
		{float64(tr.DstWidth - 1), 0},
		{0, float64(tr.DstHeight - 1)},
		{float64(tr.DstWidth - 1), float64(tr.DstHeight - 1)},
	} {
		u := tr.SrcX.Eval(c[0], c[1])
		v := tr.SrcY.Eval(c[0], c[1])
		minX, maxX = math.Min(minX, u), math.Max(maxX, u)
		minY, maxY = math.Min(minY, v), math.Max(maxY, v)
	}
	const margin = 2
	return int(minX) - margin, int(maxX) + margin + 1, int(minY) - margin, int(maxY) + margin + 1
}

// regionThresholds picks the acquisition's threshold set from the solar
// zenith angle at the region centre (both chains share this policy so
// Table 1/2 compare like with like).
func regionThresholds(tr georef.Transform, at time.Time) detect.Thresholds {
	lon, lat := tr.PixelToGeo(tr.DstWidth/2, tr.DstHeight/2)
	return detect.ForZenith(solar.ZenithAngle(at, lon, lat))
}

// SciQLChain is the TELEIOS chain: vault ingestion plus the Figure 4
// classification query on the SciQL engine. Georeferencing runs as a
// registered array kernel between the two SciQL stages (see DESIGN.md).
type SciQLChain struct {
	Vault     *vault.Vault
	Engine    *sciql.Engine
	Transform georef.Transform
	ChainName string
}

// NewSciQLChain wires a chain over a vault and scan geometry.
func NewSciQLChain(v *vault.Vault, tr georef.Transform) *SciQLChain {
	e := sciql.NewEngine()
	v.Register(e)
	return &SciQLChain{Vault: v, Engine: e, Transform: tr, ChainName: "sciql"}
}

// Name implements Chain.
func (c *SciQLChain) Name() string { return c.ChainName }

// classificationQuery renders the Figure 4 query with the acquisition's
// threshold set substituted — the paper's "common small changes, such as
// changing threshold values, are as easy as changing a few tuples".
func classificationQuery(th detect.Thresholds) string {
	return fmt.Sprintf(`
SELECT [x], [y],
CASE
 WHEN v039 > %g AND v039 - v108 > %g AND v039_std_dev > %g AND
      v108_std_dev < %g
 THEN 2
 WHEN v039 > %g AND v039 - v108 > %g AND v039_std_dev > %g AND
      v108_std_dev < %g
 THEN 1
 ELSE 0
END AS confidence
FROM (
 SELECT [x], [y], v039, v108,
  SQRT( v039_sqr_mean - v039_mean * v039_mean ) AS v039_std_dev,
  SQRT( v108_sqr_mean - v108_mean * v108_mean ) AS v108_std_dev
 FROM (
  SELECT [x], [y], v039, v108,
   AVG( v039 ) AS v039_mean, AVG( v039 * v039 ) AS v039_sqr_mean,
   AVG( v108 ) AS v108_mean, AVG( v108 * v108 ) AS v108_sqr_mean
  FROM (
   SELECT [T039.x], [T039.y], T039.v AS v039, T108.v AS v108
   FROM hrit_T039_image_array AS T039
   JOIN hrit_T108_image_array AS T108
   ON T039.x = T108.x AND T039.y = T108.y
  ) AS image_array
  GROUP BY image_array[x-1:x+2][y-1:y+2]
 ) AS tmp1
) AS tmp2`,
		th.T039, th.DiffFire, th.Std039Fire, th.Std108Max,
		th.T039, th.DiffPotential, th.Std039Pot, th.Std108Max)
}

// Process implements Chain.
func (c *SciQLChain) Process(sensor string, at time.Time) (*products.Product, error) {
	x0, x1, y0, y1 := cropWindow(c.Transform)

	// Stage 1 (SciQL): lazy vault load + crop by range query. The two
	// channels decode concurrently, and the solar/threshold prep for
	// stage 3 overlaps with them: these are the independent per-
	// acquisition stages of the real-time budget. The concurrent Execs
	// only read the engine catalog (their FROM is a table function), so
	// they are safe against each other; catalog mutation resumes after
	// the join.
	thCh := make(chan detect.Thresholds, 1)
	go func() { thCh <- regionThresholds(c.Transform, at) }()

	channels := []string{hrit.ChannelIR039, hrit.ChannelIR108}
	cropped := make([]*array.Dense, len(channels))
	errs := make([]error, len(channels))
	var wg sync.WaitGroup
	for i, ch := range channels {
		wg.Add(1)
		go func(i int, ch string) {
			defer wg.Done()
			frame, err := c.Engine.Exec(fmt.Sprintf(
				`SELECT [x], [y], v FROM hrit_load_image('%s') AS img WHERE x >= %d AND x < %d AND y >= %d AND y < %d`,
				vault.URI(ch, at), x0, x1, y0, y1))
			if err != nil {
				errs[i] = fmt.Errorf("core: sciql crop %s: %w", ch, err)
				return
			}
			d, err := frame.Dense("v")
			if err != nil {
				errs[i] = err
				return
			}
			cropped[i] = d
		}(i, ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Stage 2 (array kernel): georeference with the precalculated
	// polynomial, one kernel per channel in parallel.
	var geo039, geo108 *array.Dense
	wg.Add(1)
	go func() {
		defer wg.Done()
		geo039 = c.Transform.Apply(cropped[0])
	}()
	geo108 = c.Transform.Apply(cropped[1])
	wg.Wait()
	c.Engine.RegisterArray("hrit_T039_image_array", geo039, "v")
	c.Engine.RegisterArray("hrit_T108_image_array", geo108, "v")

	// Stage 3 (SciQL): the Figure 4 classification query.
	th := <-thCh
	frame, err := c.Engine.Exec(classificationQuery(th))
	if err != nil {
		return nil, fmt.Errorf("core: sciql classify: %w", err)
	}
	conf, err := frame.Dense("confidence")
	if err != nil {
		return nil, err
	}

	// Stage 4: output generation (pixel squares as WKT polygons).
	return products.Vectorize(conf, c.Transform, sensor, c.ChainName, at), nil
}

// LegacyChain is the imperative baseline: the same steps hand-coded in
// the style of the pre-TELEIOS C implementation.
type LegacyChain struct {
	Vault     *vault.Vault
	Transform georef.Transform
}

// NewLegacyChain wires the baseline over the same vault.
func NewLegacyChain(v *vault.Vault, tr georef.Transform) *LegacyChain {
	return &LegacyChain{Vault: v, Transform: tr}
}

// Name implements Chain.
func (c *LegacyChain) Name() string { return "legacy" }

// Process implements Chain.
func (c *LegacyChain) Process(sensor string, at time.Time) (*products.Product, error) {
	x0, x1, y0, y1 := cropWindow(c.Transform)
	t039, err := c.Vault.LoadTemperature(hrit.ChannelIR039, at)
	if err != nil {
		return nil, err
	}
	t108, err := c.Vault.LoadTemperature(hrit.ChannelIR108, at)
	if err != nil {
		return nil, err
	}
	crop039 := t039.Slice(x0, x1, y0, y1)
	crop108 := t108.Slice(x0, x1, y0, y1)
	geo039 := c.Transform.Apply(crop039)
	geo108 := c.Transform.Apply(crop108)
	// Uniform regime per acquisition, like the SciQL chain: both chains
	// evaluate the zenith once at the region centre.
	lon, lat := c.Transform.PixelToGeo(c.Transform.DstWidth/2, c.Transform.DstHeight/2)
	zen := solar.ZenithAngle(at, lon, lat)
	conf := detect.LegacyClassify(geo039, geo108, func(x, y int) float64 { return zen })
	return products.Vectorize(conf, c.Transform, sensor, "legacy", at), nil
}

// IngestAcquisition attaches a raw acquisition's segment files to the
// vault (the ground-station dispatch step).
func IngestAcquisition(v *vault.Vault, acq *seviri.RawAcquisition) error {
	for ch, files := range acq.Segments {
		for i, raw := range files {
			name := fmt.Sprintf("%s_%s_%s_seg%d.hrit", acq.Sensor.Name, ch,
				acq.Timestamp.UTC().Format("20060102T150405"), i)
			if err := v.AttachBytes(name, raw); err != nil {
				return err
			}
		}
	}
	return nil
}
