package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/products"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/seviri"
)

// This file is the concurrent acquisition pipeline: the paper's real-time
// requirement ("both ... need to finish in less than 5 minutes") pursued
// with bounded parallelism instead of a strictly sequential loop.
//
// The pipeline has two halves joined by an ordered, batching writer:
//
//	workers (Workers goroutines)          writer (one goroutine)
//	┌────────────────────────────┐        ┌──────────────────────────────┐
//	│ acquire → ingest → chain   │ ─────▶ │ reorder by sequence          │
//	│ (per-acquisition, parallel)│        │ flush: batch RDF-ize +       │
//	└────────────────────────────┘        │   one strabon InsertAll      │
//	                                      │ scoped refinement, evaluated │
//	                                      │   once per flush (range)     │
//	                                      │ time persistence (in order)  │
//	                                      └──────────────────────────────┘
//
// The front half of an acquisition — downlink simulation, vault attach,
// SciQL chain — touches only the simulator (read-only), the vault
// (internally locked) and a per-worker SciQL engine, so acquisitions
// stream through it concurrently. Completed products funnel into the
// writer, which restores acquisition order and batches store writes:
// each flush RDF-izes every product in the batch and performs a single
// strabon.InsertAll (one write-lock acquisition, one R-tree bulk load)
// instead of a per-hotspot insert.
//
// Refinement is split along its data dependencies (see package refine):
// the acquisition-scoped operations act hotspot-by-hotspot, so the
// writer evaluates each of them once over the whole flush's acquisition
// range (refine.RunScopedRange) — batching the rule evaluation the way
// the store insert is batched, paying each update's scan-and-join setup
// per flush instead of per acquisition. Time Persistence reads the
// preceding hour of history and therefore runs strictly in acquisition
// order on the writer. This decomposition keeps the refined output
// identical to the sequential run for every worker count — the
// invariant the stress test in pipeline_test.go pins down.

// errAborted marks jobs skipped after an earlier acquisition failed.
var errAborted = errors.New("core: pipeline aborted")

// chainResult is one acquisition's front-half outcome, tagged with its
// position in the window so the writer can restore acquisition order.
type chainResult struct {
	seq       int
	at        time.Time
	product   *products.Product
	chainTime time.Duration
	err       error
}

// workers resolves the configured worker count; 0 defaults to
// runtime.NumCPU().
func (s *Service) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.NumCPU()
}

// EffectiveWorkers reports the worker count RunWindow will use.
func (s *Service) EffectiveWorkers() int { return s.workers() }

// flushBatch resolves the writer's maximum flush size.
func (s *Service) flushBatch() int {
	if s.FlushBatch > 0 {
		return s.FlushBatch
	}
	return defaultFlushBatch
}

const defaultFlushBatch = 4

// workerChain returns a processing chain private to one worker. Chains
// own a SciQL engine, whose array catalog is not safe for concurrent
// mutation; the factory gives every worker its own engine over the shared
// (internally locked) vault.
func (s *Service) workerChain() Chain {
	if s.NewChain != nil {
		return s.NewChain()
	}
	return s.Chain
}

// frontHalf runs the concurrent-safe half of one acquisition: downlink
// simulation, vault attach, and the processing chain.
func (s *Service) frontHalf(chain Chain, sensor seviri.Sensor, at time.Time) (*products.Product, time.Duration, error) {
	acqStart := time.Now()
	acq, err := s.Sim.Acquire(sensor, at, s.Segments, s.Compress)
	if err != nil {
		return nil, 0, fmt.Errorf("core: acquire: %w", err)
	}
	s.Metrics.observe("acquire", time.Since(acqStart))
	ingestStart := time.Now()
	if err := IngestAcquisition(s.Vault, acq); err != nil {
		return nil, 0, fmt.Errorf("core: ingest: %w", err)
	}
	s.Metrics.observe("ingest", time.Since(ingestStart))
	chainStart := time.Now()
	product, err := chain.Process(sensor.Name, at)
	if err != nil {
		return nil, 0, fmt.Errorf("core: chain: %w", err)
	}
	chainTime := time.Since(chainStart)
	s.Metrics.observe("chain", chainTime)
	return product, chainTime, nil
}

// runPipeline services the acquisitions of a window through the
// concurrent pipeline and appends their reports and products in
// acquisition order, exactly as the sequential loop would.
func (s *Service) runPipeline(sensor seviri.Sensor, times []time.Time) error {
	if len(times) == 0 {
		return nil
	}
	w := s.workers()
	if w > len(times) {
		w = len(times)
	}

	// errSeq is the sequence of the earliest known failure; acquisitions
	// before it still complete and commit, ones at or after it are
	// skipped. This matches the sequential loop's error behaviour: all
	// work before the failing acquisition lands, the failure's error is
	// surfaced, nothing after it runs. Workers and the feeder read the
	// watermark; only the writer goroutine (this function) lowers it.
	var errSeq atomic.Int64
	errSeq.Store(int64(len(times)))
	var firstErr error
	fail := func(seq int, err error) {
		if int64(seq) < errSeq.Load() {
			errSeq.Store(int64(seq))
			firstErr = err
		}
	}

	jobs := make(chan int)
	results := make(chan chainResult, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chain := s.workerChain()
			for seq := range jobs {
				if int64(seq) >= errSeq.Load() {
					results <- chainResult{seq: seq, err: errAborted}
					continue
				}
				product, chainTime, err := s.frontHalf(chain, sensor, times[seq])
				results <- chainResult{seq: seq, at: times[seq], product: product, chainTime: chainTime, err: err}
			}
		}()
	}
	go func() {
		for i := range times {
			if int64(i) >= errSeq.Load() {
				break
			}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]chainResult, 2*w)
	next := 0
	maxFlush := s.flushBatch()
	for res := range results {
		if res.err != nil {
			if !errors.Is(res.err, errAborted) {
				fail(res.seq, res.err)
			}
			continue
		}
		pending[res.seq] = res
		for {
			batch := drainReady(pending, &next, maxFlush, int(errSeq.Load()))
			if len(batch) == 0 {
				break
			}
			if err := s.flush(sensor, batch); err != nil {
				// A flush failure cannot be attributed to one acquisition
				// mid-batch; surface it at the batch start. (Unlike the
				// sequential loop, the whole batch's store insert has
				// already landed at this point.)
				fail(batch[0].seq, err)
				break
			}
		}
	}
	return firstErr
}

// drainReady pops up to maxFlush consecutive in-order results from the
// reorder buffer, stopping at a gap or at the failure watermark.
func drainReady(pending map[int]chainResult, next *int, maxFlush, errSeq int) []chainResult {
	var batch []chainResult
	for len(batch) < maxFlush && *next < errSeq {
		res, ok := pending[*next]
		if !ok {
			break
		}
		delete(pending, *next)
		*next++
		batch = append(batch, res)
	}
	return batch
}

// flush commits one in-order batch of products: a single batched store
// insert, one range-scoped refinement evaluation for the whole batch,
// then ordered history-dependent refinement and report assembly.
//
// In this mode the per-report RefineOps are flush-level measurements:
// each product's Store and scoped-op durations are its share of the
// batched execution, and the scoped-op Affected counts are flush totals.
func (s *Service) flush(sensor seviri.Sensor, batch []chainResult) error {
	// Batched RDF-ization + one InsertAll for the whole flush.
	groups := make([][]rdf.Triple, len(batch))
	for i, res := range batch {
		p := res.product
		groups[i] = p.TriplesInto(make([]rdf.Triple, 0, 9*len(p.Hotspots)+5))
	}
	insertStart := time.Now()
	counts := s.Strabon.InsertAll(groups...)
	share := func(d time.Duration) time.Duration { return d / time.Duration(len(batch)) }
	storeShare := share(time.Since(insertStart))
	s.Metrics.observe("flush", time.Since(insertStart))
	s.Metrics.observeFlush(len(batch))

	// Scoped refinement, evaluated once over the batch's acquisition
	// range: the batch-rule-evaluation trade — one scan-and-join setup
	// per flush instead of per acquisition — with hotspot-identical
	// effect, since every scoped operation acts per hotspot.
	refineStart := time.Now()
	scoped, err := s.Refiner.RunScopedRange(batch[0].at, batch[len(batch)-1].at)
	if err != nil {
		return err
	}
	s.Metrics.observe("refine", time.Since(refineStart))

	// History-dependent refinement and report assembly, in order.
	for i, res := range batch {
		timings := make([]refine.Timing, 0, 2+len(scoped))
		timings = append(timings, refine.Timing{
			Op: refine.OpStore, At: res.at, Duration: storeShare, Affected: counts[i],
		})
		for _, op := range scoped {
			timings = append(timings, refine.Timing{
				Op: op.Op, At: res.at, Duration: share(op.Duration), Affected: op.Affected,
			})
		}
		timings, err := s.Refiner.RunHistorical(res.product, timings)
		if err != nil {
			return err
		}
		refined, err := s.Refiner.CurrentHotspots(res.at)
		if err != nil {
			return err
		}
		var total time.Duration
		for _, t := range timings {
			total += t.Duration
		}
		s.PlainProducts = append(s.PlainProducts, res.product)
		s.Reports = append(s.Reports, AcquisitionReport{
			Sensor:      sensor.Name,
			At:          res.at,
			RawHotspot:  len(res.product.Hotspots),
			Refined:     len(refined.Rows),
			ChainTime:   res.chainTime,
			RefineOps:   timings,
			DeadlineMet: res.chainTime+total < sensor.Cadence,
		})
	}
	return nil
}

// SortedHotspotKeys renders a deterministic fingerprint of a product set:
// every hotspot as "sensor|time|wkt|confidence", sorted. Two service runs
// produced the same refined output iff their fingerprints match; the
// pipeline stress test uses this to compare worker counts.
func SortedHotspotKeys(ps []*products.Product) []string {
	var keys []string
	for _, p := range ps {
		for _, h := range p.Hotspots {
			keys = append(keys, fmt.Sprintf("%s|%s|%v|%.3f",
				h.Sensor, h.AcquiredAt.UTC().Format(time.RFC3339), h.Geometry, h.Confidence))
		}
	}
	sort.Strings(keys)
	return keys
}
