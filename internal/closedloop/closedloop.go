// Package closedloop drives a served Strabon endpoint the way the
// paper's NOA operators do: N concurrent clients replaying a mix of
// hot (recurring thematic) and cold (one-off exploratory) queries over
// HTTP while the fire-monitoring writer keeps appending acquisitions —
// and measures what the clients actually see: per-request latency
// quantiles, error/rejection counts and throughput. It is the shared
// workload + measurement core of cmd/benchserve and the served
// closed-loop benchmark.
package closedloop

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one closed-loop run.
type Config struct {
	// BaseURL is the endpoint root (e.g. http://127.0.0.1:7575).
	BaseURL string
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Requests is the total request budget across all clients.
	Requests int
	// HotFrac is the probability a request replays a hot-set query;
	// the rest are cold (unique text per request, so they can never
	// hit a result cache).
	HotFrac float64
	// Hot is the recurring query set (picked uniformly).
	Hot []string
	// Cold generates the one-off query for a global sequence number.
	Cold func(seq int) string
	// Client overrides the HTTP client (default: http.DefaultClient).
	Client *http.Client
}

// Report aggregates what the clients observed.
type Report struct {
	Requests int // completed requests (2xx)
	Hot      int // requests drawn from the hot set
	Cold     int
	Errors   int // non-2xx answers other than 429
	Rejected int // 429 admission rejections (excluded from latencies)

	P50, P90, P95, P99, Max time.Duration
	Mean                    time.Duration
	Elapsed                 time.Duration
	Throughput              float64 // completed requests per second
}

// String renders the report for logs.
func (r Report) String() string {
	return fmt.Sprintf(
		"%d reqs (%d hot, %d cold) in %v: p50=%v p90=%v p99=%v max=%v mean=%v %.0f req/s, %d errors, %d rejected",
		r.Requests, r.Hot, r.Cold, r.Elapsed.Round(time.Millisecond),
		r.P50, r.P90, r.P99, r.Max, r.Mean, r.Throughput, r.Errors, r.Rejected)
}

// Run executes the closed loop: each client issues its share of the
// request budget back to back (a new request as soon as the previous
// response is fully read — closed-loop, not open-loop), drawing hot vs
// cold per HotFrac with a deterministic per-client RNG. Latency is
// time-to-last-byte. 429 answers count as rejections, back off 1ms and
// are excluded from the latency distribution.
func Run(cfg Config) Report {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	var (
		seq       atomic.Int64
		mu        sync.Mutex
		rep       Report
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	perClient := cfg.Requests / cfg.Clients
	extra := cfg.Requests % cfg.Clients
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		n := perClient
		if c < extra {
			n++
		}
		wg.Add(1)
		go func(id, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
			var lats []time.Duration
			var done, hot, cold, errs, rej int
			for i := 0; i < n; i++ {
				var q string
				if len(cfg.Hot) > 0 && rng.Float64() < cfg.HotFrac {
					q = cfg.Hot[rng.Intn(len(cfg.Hot))]
					hot++
				} else {
					q = cfg.Cold(int(seq.Add(1)))
					cold++
				}
				t0 := time.Now()
				status, err := fetch(client, cfg.BaseURL, q)
				lat := time.Since(t0)
				switch {
				case err != nil || status >= 300:
					if status == http.StatusTooManyRequests {
						rej++
						time.Sleep(time.Millisecond)
					} else {
						errs++
					}
				default:
					done++
					lats = append(lats, lat)
				}
			}
			mu.Lock()
			rep.Requests += done
			rep.Hot += hot
			rep.Cold += cold
			rep.Errors += errs
			rep.Rejected += rej
			latencies = append(latencies, lats...)
			mu.Unlock()
		}(c, n)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / rep.Elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		rep.Mean = sum / time.Duration(len(latencies))
		rep.P50 = quantile(latencies, 0.50)
		rep.P90 = quantile(latencies, 0.90)
		rep.P95 = quantile(latencies, 0.95)
		rep.P99 = quantile(latencies, 0.99)
		rep.Max = latencies[len(latencies)-1]
	}
	return rep
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// fetch issues one /sparql GET and drains the body (latency is
// time-to-last-byte; trailers — and cursor teardown on the server —
// only complete once the body is read).
func fetch(client *http.Client, base, query string) (int, error) {
	resp, err := client.Get(base + "/sparql?query=" + url.QueryEscape(query))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}
