package closedloop

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/resultcache"
	"repro/internal/shard"
	"repro/internal/strabon"
)

// BenchmarkServedClosedLoop measures the serving tier end to end: N
// closed-loop clients replaying the hot/cold thematic mix over HTTP
// against a live 4-slice store while the writer appends to slice 1,
// with the result cache on vs off. The hot sub-benchmarks replay only
// the recurring set (the cache's best case and the acceptance metric:
// p50 cache=on must beat cache=off by >=3x); mixed interleaves 30%
// unique cold queries. Reported metrics are client-observed
// microsecond latency quantiles plus the hot-set hit ratio.
func BenchmarkServedClosedLoop(b *testing.B) {
	for _, tc := range []struct {
		name    string
		cache   bool
		hotFrac float64
	}{
		{"hot/cache=on", true, 1.0},
		{"hot/cache=off", false, 1.0},
		{"mixed/cache=on", true, 0.7},
		{"mixed/cache=off", false, 0.7},
	} {
		b.Run(tc.name, func(b *testing.B) {
			st := shard.New(shard.Config{Slices: 4, Width: time.Hour, Epoch: Day()})
			Seed(st, 12)
			ep := strabon.NewEndpoint(st)
			if tc.cache {
				ep.Results = resultcache.New(1024, 64<<20)
			}
			ep.Admission = strabon.NewAdmission(8, 64)
			srv := httptest.NewServer(ep)
			defer srv.Close()
			stop := StartWriter(st, 500*time.Microsecond)
			defer stop()

			b.ResetTimer()
			rep := Run(Config{
				BaseURL:  srv.URL,
				Clients:  4,
				Requests: b.N,
				HotFrac:  tc.hotFrac,
				Hot:      HotQueries(),
				Cold:     ColdQuery,
			})
			b.StopTimer()
			stop()
			if rep.Errors > 0 {
				b.Fatalf("%d request errors", rep.Errors)
			}
			b.ReportMetric(float64(rep.P50.Microseconds()), "p50-us")
			b.ReportMetric(float64(rep.P99.Microseconds()), "p99-us")
			if tc.cache && rep.Hot > 0 {
				hits := float64(ep.Results.Stats().Hits)
				b.ReportMetric(hits/float64(rep.Hot), "hit-ratio")
			}
		})
	}
}
