package closedloop

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/products"
	"repro/internal/rdf"
	"repro/internal/strabon"
)

// The workload geometry mirrors the scenario the paper serves: a day of
// accumulated MSG acquisitions queried by recurring thematic windows
// while the live chain keeps writing the current acquisition. On a
// 4-slice, 1h-width sharded store with Epoch=Day, history hours 0..11
// cover every slice (buckets round-robin), the hot windows (hours 0, 2
// and 3) prune to slices 0, 2 and 3, and the live writer stays pinned
// inside bucket 13 — slice 1 — so hot cached results survive the write
// stream while anything that read slice 1 invalidates per write.

// Day is the scenario date the fixtures and queries share.
func Day() time.Time { return time.Date(2007, 8, 25, 0, 0, 0, 0, time.UTC) }

const (
	nsGAG   = "http://teleios.di.uoa.gr/ontologies/gagOntology.owl#"
	nsStRDF = "http://strdf.di.uoa.gr/ontology#"
)

// StaticTriples builds the reference side of the workload:
// municipalities tiling the [0,20]x[0,10] region the hotspots land in.
func StaticTriples() []rdf.Triple {
	var out []rdf.Triple
	for i := 0; i < 4; i++ {
		m := rdf.NewIRI(fmt.Sprintf("http://example.org/mun%d", i))
		x := float64(i * 5)
		out = append(out,
			rdf.Triple{S: m, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(nsGAG + "Municipality")},
			rdf.Triple{S: m, P: rdf.NewIRI(nsStRDF + "hasGeometry"), O: rdf.NewGeometry(fmt.Sprintf(
				"POLYGON ((%g 0, %g 0, %g 10, %g 10, %g 0))", x, x+5, x+5, x, x))},
			rdf.Triple{S: m, P: rdf.NewIRI(nsGAG + "hasPopulation"), O: rdf.NewInteger(int64(1000 * (i + 1)))},
		)
	}
	return out
}

// HistoryProducts builds the accumulated acquisition history: four
// products per hour for the given number of hours from Day, six
// hotspots each.
func HistoryProducts(hours int) []*products.Product {
	var out []*products.Product
	for i := 0; i < hours*4; i++ {
		at := Day().Add(time.Duration(i) * 15 * time.Minute)
		p := &products.Product{Sensor: "MSG1", Chain: "loop", AcquiredAt: at}
		for j := 0; j < 6; j++ {
			p.Hotspots = append(p.Hotspots, products.Hotspot{
				ID:         fmt.Sprintf("h%d_%d", i, j),
				Geometry:   geom.NewSquare(float64((i+5*j)%19)+0.5, 5, 0.5),
				Confidence: 0.5 + 0.5*float64((i+j)%2),
				AcquiredAt: at, Sensor: "MSG1", Chain: "loop", Producer: "noa",
			})
		}
		out = append(out, p)
	}
	return out
}

// Seed loads the reference datasets plus hours of acquisition history
// into the store, product group by product group (the routed write
// path), and returns the triple count.
func Seed(st strabon.API, hours int) int {
	n := st.LoadTriples(StaticTriples())
	for _, p := range HistoryProducts(hours) {
		for _, c := range st.InsertAll(p.Triples()) {
			n += c
		}
	}
	return n
}

// StartWriter launches the live writer: one single-hotspot product per
// interval, every timestamp pinned inside the bucket of Day+13h (slice
// 1 on a 4-slice store — advancing past the bucket would cycle the
// round-robin through every slice and invalidate the whole cache).
// The returned stop blocks until the writer goroutine has exited and
// is safe to call more than once.
func StartWriter(st strabon.API, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			at := Day().Add(13*time.Hour + time.Duration(i%12)*5*time.Minute)
			p := &products.Product{Sensor: "MSG1", Chain: "loop", AcquiredAt: at}
			p.Hotspots = append(p.Hotspots, products.Hotspot{
				ID: fmt.Sprintf("w%d", i), Geometry: geom.NewSquare(3, 5, 0.5),
				Confidence: 1.0, AcquiredAt: at, Sensor: "MSG1", Chain: "loop", Producer: "noa",
			})
			st.InsertAll(p.Triples())
			time.Sleep(interval)
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}

const timeFmt = "2006-01-02T15:04:05"

// windowJoin is the paper's dominant thematic shape: hotspots of one
// acquisition window joined spatially against the municipalities.
func windowJoin(lo, hi time.Time) string {
	return fmt.Sprintf(`SELECT ?h ?m WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?hg .
  ?m a gag:Municipality ; strdf:hasGeometry ?mg .
  FILTER( str(?at) >= "%s" )
  FILTER( str(?at) <= "%s" )
  FILTER( strdf:anyInteract(?hg, ?mg) )
}`, lo.Format(timeFmt), hi.Format(timeFmt))
}

// HotQueries is the recurring thematic set: window joins over hours 0
// and 2 plus a per-municipality count over hour 3 — windows that prune
// to slices 0, 2 and 3, away from the live writer's slice.
func HotQueries() []string {
	d := Day()
	hour := func(h int) (time.Time, time.Time) {
		lo := d.Add(time.Duration(h) * time.Hour)
		return lo, lo.Add(59 * time.Minute)
	}
	lo0, hi0 := hour(0)
	lo2, hi2 := hour(2)
	lo3, hi3 := hour(3)
	return []string{
		windowJoin(lo0, hi0),
		windowJoin(lo2, hi2),
		fmt.Sprintf(`SELECT ?m (COUNT(?h) AS ?n) WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?hg .
  ?m a gag:Municipality ; strdf:hasGeometry ?mg .
  FILTER( str(?at) >= "%s" )
  FILTER( str(?at) <= "%s" )
  FILTER( strdf:anyInteract(?hg, ?mg) )
} GROUP BY ?m`, lo3.Format(timeFmt), hi3.Format(timeFmt)),
	}
}

// ColdQuery generates the one-off exploratory query for a global
// sequence number: a 10-minute window whose start slides second by
// second through history hours 4..11, so every text is unique for the
// first 28800 sequence numbers — a cold query can never hit the result
// cache, which makes every observed hit attributable to the hot set.
func ColdQuery(seq int) string {
	lo := Day().Add(4*time.Hour + time.Duration(seq%28800)*time.Second)
	return windowJoin(lo, lo.Add(10*time.Minute))
}
