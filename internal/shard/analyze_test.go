package shard

import (
	"context"
	"strings"
	"testing"
)

const analyzeWindowSelect = `
SELECT ?h ?g WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?g .
  FILTER( str(?at) >= "2007-08-25T10:00:00" )
  FILTER( str(?at) <= "2007-08-25T11:45:00" )
}`

// drainCount runs a query through the ordinary routed path and counts
// rows — the reference ExplainAnalyze's totals must agree with.
func drainCount(t *testing.T, sh *Store, q string) int {
	t.Helper()
	cur, err := sh.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	n := 0
	for _, ok := cur.Next(); ok; _, ok = cur.Next() {
		n++
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestShardExplainAnalyzeFanout(t *testing.T) {
	sh := newSharded(4)
	loadFixture(sh)

	want := drainCount(t, sh, analyzeWindowSelect)
	if want == 0 {
		t.Fatal("fixture query returned no rows")
	}
	out, err := sh.ExplainAnalyze(context.Background(), analyzeWindowSelect)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{
		"shard fan-out:", "(analyze)", "shard[", "actual rows=", "merge[",
	} {
		if !strings.Contains(out, sub) {
			t.Errorf("analyze output lacks %q:\n%s", sub, out)
		}
	}
	// The window spans two hour-buckets: both shards report a section.
	if n := strings.Count(out, "  shard["); n != 2 {
		t.Errorf("got %d shard sections, want 2:\n%s", n, out)
	}
	if !strings.Contains(out, "merge[concat]: rows="+itoa(want)) {
		t.Errorf("merge count disagrees with QueryStream drain (%d rows):\n%s", want, out)
	}
	if !strings.Contains(out, "total: rows="+itoa(want)) {
		t.Errorf("total disagrees with QueryStream drain (%d rows):\n%s", want, out)
	}

	// The analyze run released every lock: a write must go through.
	if _, err := sh.Update(`INSERT DATA { noa:extra a noa:Hotspot . }`); err != nil {
		t.Fatal(err)
	}
}

func TestShardExplainAnalyzeUnionFallback(t *testing.T) {
	sh := newSharded(4)
	loadFixture(sh)

	// Static-only data carries no slice-classed pattern, so routing
	// falls back to the single traced evaluation over the union view.
	q := `SELECT ?m WHERE { ?m a gag:Municipality . }`
	want := drainCount(t, sh, q)
	out, err := sh.ExplainAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard union: single evaluation over static+4 slices (analyze)") {
		t.Errorf("no union header:\n%s", out)
	}
	if !strings.Contains(out, "actual rows=") || !strings.Contains(out, "total: rows="+itoa(want)) {
		t.Errorf("union analyze totals wrong (want %d rows):\n%s", want, out)
	}
}

func TestShardExplainAnalyzeAsk(t *testing.T) {
	sh := newSharded(4)
	loadFixture(sh)

	out, err := sh.ExplainAnalyze(context.Background(), `
ASK {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) = "2007-08-25T10:00:00" )
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"merge=ask (analyze)", "shard[", "ask=true", "total: ask=true"} {
		if !strings.Contains(out, sub) {
			t.Errorf("ask analyze output lacks %q:\n%s", sub, out)
		}
	}
}

func TestShardExplainAnalyzeEmptyWindow(t *testing.T) {
	sh := newSharded(4)
	loadFixture(sh)

	out, err := sh.ExplainAnalyze(context.Background(), `
SELECT ?h WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) >= "2007-08-26T00:00:00" )
  FILTER( str(?at) <= "2007-08-26T00:30:00" )
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total: rows=0") {
		t.Errorf("day-after window should yield no rows:\n%s", out)
	}
}

func TestShardExplainAnalyzeRejectsUpdate(t *testing.T) {
	sh := newSharded(2)
	if _, err := sh.ExplainAnalyze(context.Background(), `INSERT DATA { noa:x a noa:Hotspot . }`); err == nil {
		t.Fatal("update accepted by ExplainAnalyze")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
