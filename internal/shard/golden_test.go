package shard

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/strabon"
	"repro/internal/stsparql"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden result files from the current engine")

// TestGoldenEquivalence pins the full corpus row-for-row against golden
// files materialised from the row-at-a-time engine before the batch
// rewrite: any divergence in the batched path — rows, values, headers,
// ORDER-BY sequences — fails here even if single and sharded stores
// drift in the same direction (which the live equivalence suite cannot
// see).
func TestGoldenEquivalence(t *testing.T) {
	single := strabon.New()
	loadFixture(single)
	sh := newSharded(2)
	loadFixture(sh)

	for _, tc := range corpus {
		t.Run(tc.name, func(t *testing.T) {
			res, err := single.Query(tc.query)
			if err != nil {
				t.Fatalf("single store: %v", err)
			}
			got := renderGolden(res, tc.ordered)
			compareGolden(t, filepath.Join("testdata", "golden", tc.name+".txt"), got)

			shRes, err := sh.Query(tc.query)
			if err != nil {
				t.Fatalf("sharded store: %v", err)
			}
			if shGot := renderGolden(shRes, tc.ordered); shGot != got {
				t.Fatalf("sharded result diverges from golden:\n--- golden\n%s\n--- sharded\n%s", got, shGot)
			}
		})
	}
	for _, tc := range askCorpus {
		t.Run(tc.name, func(t *testing.T) {
			res, err := single.Query(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			got := renderGolden(res, true)
			compareGolden(t, filepath.Join("testdata", "golden", tc.name+".txt"), got)
		})
	}
}

// renderGolden canonicalises a result: header line, then one line per
// row (sorted lexicographically unless the query's ORDER BY fully
// determines the sequence — store scan order is nondeterministic).
func renderGolden(res *stsparql.Result, ordered bool) string {
	vars, rows := renderRows(res)
	if !ordered {
		sort.Strings(rows)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "vars: %s\n", strings.Join(vars, ","))
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden): %v", path, err)
	}
	if string(want) != got {
		t.Fatalf("result diverges from %s:\n--- want\n%s\n--- got\n%s", path, want, got)
	}
}
