package shard

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/products"
	"repro/internal/seviri"
	"repro/internal/strabon"
)

// TestShardStreamsDuringWrites races streaming fan-out queries,
// recombined aggregates and union-view scans against a writer appending
// acquisitions to the live slice — the shard-local lock discipline
// under -race (the CI race step runs this package).
func TestShardStreamsDuringWrites(t *testing.T) {
	sh := newSharded(4)
	loadFixture(sh)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: new products marching forward in time (always landing in
	// the "live" bucket of the moment).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			at := day.Add(14*time.Hour + time.Duration(i)*5*time.Minute)
			p := &products.Product{Sensor: "MSG1", Chain: "race", AcquiredAt: at}
			p.Hotspots = append(p.Hotspots, products.Hotspot{
				ID: fmt.Sprintf("race_%d", i), Geometry: geom.NewSquare(2, 5, 0.5),
				Confidence: 1.0, AcquiredAt: at, Sensor: "MSG1", Chain: "race", Producer: "noa",
			})
			sh.InsertAll(p.Triples())
		}
	}()

	queries := []string{
		// Historical window: prunes away from the live slice.
		`SELECT ?h ?g WHERE { ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?g .
  FILTER( str(?at) >= "2007-08-25T10:00:00" ) FILTER( str(?at) <= "2007-08-25T10:45:00" ) }`,
		// All-shard aggregate with recombination.
		`SELECT ?s (COUNT(?h) AS ?n) WHERE { ?h a noa:Hotspot ; noa:isDerivedFromSensor ?s ;
  noa:hasAcquisitionDateTime ?at . } GROUP BY ?s`,
		// Union-view fallback.
		`SELECT ?m WHERE { ?m a gag:Municipality . }`,
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := queries[(r+i)%len(queries)]
				cur, err := sh.QueryStreamCtx(context.Background(), q)
				if err != nil {
					t.Error(err)
					return
				}
				for {
					if _, ok := cur.Next(); !ok {
						break
					}
				}
				if err := cur.Close(); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	// Scoped-update thread: shard-local plan+apply racing the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_, err := sh.UpdateScoped(`INSERT { ?h noa:isInMunicipality ?m }
WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?hg .
  ?m a gag:Municipality ; strdf:hasGeometry ?mg .
  FILTER( str(?at) >= "2007-08-25T11:00:00" ) FILTER( str(?at) <= "2007-08-25T12:00:00" )
  FILTER( strdf:anyInteract(?hg, ?mg) )
}`)
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shard race test deadlocked")
	}
}

// TestShardedPipelineMatchesSingle runs the full acquisition pipeline —
// batched writes, scoped refinement, time persistence — over a single
// store and over a sharded store whose slices are narrower than the
// persistence window, and requires identical refined output.
func TestShardedPipelineMatchesSingle(t *testing.T) {
	cfg := seviri.DefaultScenarioConfig()
	run := func(st strabon.API) *core.Service {
		svc, err := core.NewServiceWithStore(42, cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		svc.Workers = 4
		from := cfg.Start.Add(11 * time.Hour)
		if err := svc.RunWindow(seviri.MSG1, from, 30*time.Minute); err != nil {
			t.Fatal(err)
		}
		return svc
	}
	single := run(strabon.New())
	sharded := run(New(Config{Slices: 3, Width: 10 * time.Minute, Epoch: cfg.Start}))

	if len(single.Reports) != len(sharded.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(single.Reports), len(sharded.Reports))
	}
	for i := range single.Reports {
		if single.Reports[i].Refined != sharded.Reports[i].Refined {
			t.Fatalf("acquisition %d refined count: single=%d sharded=%d",
				i, single.Reports[i].Refined, sharded.Reports[i].Refined)
		}
	}
	rp1, err := single.RefinedProducts()
	if err != nil {
		t.Fatal(err)
	}
	rp2, err := sharded.RefinedProducts()
	if err != nil {
		t.Fatal(err)
	}
	k1 := core.SortedHotspotKeys(rp1)
	k2 := core.SortedHotspotKeys(rp2)
	if len(k1) != len(k2) {
		t.Fatalf("refined hotspot counts differ: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("refined hotspot %d differs:\nsingle:  %s\nsharded: %s", i, k1[i], k2[i])
		}
	}
	if single.Strabon.Len() != sharded.Strabon.Len() {
		t.Fatalf("store sizes differ: single=%d sharded=%d", single.Strabon.Len(), sharded.Strabon.Len())
	}

	// The pipeline's write patterns (batched product inserts, scoped
	// refinement, persistence updates) must never trip the co-location
	// safety latch — fan-out has to survive real operation.
	out, err := sharded.Strabon.(*Store).Explain(
		`SELECT ?h WHERE { ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard fan-out") {
		t.Fatalf("pipeline writes tripped the split latch; queries degraded to union-only:\n%s", out)
	}
}
