package shard

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/strabon"
	"repro/internal/stsparql"
)

// QueryStream parses, routes and starts a SELECT or ASK, returning a
// streaming cursor. See QueryStreamCtx.
func (s *Store) QueryStream(src string) (strabon.QueryCursor, error) {
	return s.QueryStreamCtx(context.Background(), src)
}

// QueryStreamCtx routes a query per the fan-out analysis and returns a
// streaming cursor over the merged result. The cursor holds read locks
// on the static store and every shard it fans out to (all of them for a
// union-view evaluation) until Close; cancelling ctx stops the merge at
// the next row pull and releases the locks.
func (s *Store) QueryStreamCtx(ctx context.Context, src string) (strabon.QueryCursor, error) {
	q, err := stsparql.Parse(src, s.ns)
	if err != nil {
		return nil, err
	}
	if q.Update != nil {
		return nil, fmt.Errorf("shard: Query wants SELECT or ASK; use Update for updates")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.countQuery()
	// Result-cacheability is an AST property (SAMPLE shapes); the
	// cursor pairs it with the generation vector captured under locks.
	cacheable := stsparql.Cacheable(q)
	switch {
	case q.Select != nil:
		dec := s.analyzeGroup(q.Select.Where)
		if !dec.fanout {
			return s.unionStream(ctx, src, q, cacheable)
		}
		return s.fanoutStream(ctx, src, q, dec, q.Select.Where, cacheable)
	default: // ASK
		dec := s.analyzeGroup(q.Ask.Where)
		if !dec.fanout {
			return s.unionStream(ctx, src, q, cacheable)
		}
		return s.askFanout(ctx, src, q, dec, q.Ask.Where, cacheable)
	}
}

// Query materialises a SELECT or ASK through the canonical streaming
// path (strabon.MaterialiseQuery), which re-reads the header after the
// drain — SELECT * and merged-aggregate headers are only final once the
// rows are known.
func (s *Store) Query(src string) (*stsparql.Result, error) {
	return strabon.MaterialiseQuery(context.Background(), s, src)
}

// unionStream evaluates once over the union view of every member store
// — the exact fallback for queries the analysis cannot decompose.
func (s *Store) unionStream(ctx context.Context, src string, q *stsparql.Query, cacheable bool) (strabon.QueryCursor, error) {
	release := s.lockAllRead()
	vec := s.fullVector()
	ev := stsparql.NewEvaluatorWithCache(s.viewAll(), s.cache)
	c := ev.CompileASTCached(src, s.genAll(), s.unionCache(), q)
	switch {
	case c.IsSelect():
		cur, err := ev.RunCompiled(c)
		if err != nil {
			release()
			return nil, err
		}
		return &unionCursor{inner: cur, ctx: ctx, release: release, vec: vec, cacheable: cacheable}, nil
	case c.IsAsk():
		ok, err := ev.AskCompiled(c)
		release()
		if err != nil {
			return nil, err
		}
		res := askResult(ok)
		res.setCacheVector(vec, cacheable)
		return res, nil
	default:
		release()
		return nil, fmt.Errorf("shard: unsupported query form")
	}
}

// recheckFanout re-runs the routing analysis with the member read locks
// held and reports whether the pre-lock decision still stands. Routing
// knowledge only grows toward the union fallback (the split latch is
// one-way, predicate provenance only gains members), so a write landing
// between the unlocked analysis and the lock acquisition can invalidate
// a fan-out decision — never create one. On mismatch the caller
// releases and evaluates over the union view.
func (s *Store) recheckFanout(where *stsparql.GroupPattern, dec decision) bool {
	dec2 := s.analyzeGroup(where)
	if !dec2.fanout || len(dec2.shards) != len(dec.shards) {
		return false
	}
	for i := range dec.shards {
		if dec2.shards[i] != dec.shards[i] {
			return false
		}
	}
	return true
}

// fanoutStream compiles the (possibly rewritten) per-shard query against
// every relevant slice view and merges the concurrent shard cursors.
func (s *Store) fanoutStream(ctx context.Context, src string, q *stsparql.Query, dec decision, where *stsparql.GroupPattern, cacheable bool) (strabon.QueryCursor, error) {
	fp, ok := planFanout(src, q)
	if !ok {
		return s.unionStream(ctx, src, q, cacheable)
	}
	if len(dec.shards) == 0 {
		// The window (or the observed ranges) excludes every slice; the
		// result reads no slice data, so no locks are needed. The cache
		// vector is captured BEFORE the recheck: a write racing past the
		// analysis publishes its routing knowledge before bumping any
		// member generation, so either the recheck sees it (union
		// fallback) or the vector predates it (entry invalidates).
		vec := s.fanVector(dec.keyShards)
		if !s.recheckFanout(where, dec) {
			return s.unionStream(ctx, src, q, cacheable)
		}
		// Grouped queries still owe their implicit group (COUNT over
		// nothing = 0).
		cur := &listCursor{vars: fp.vars}
		if fp.mode == fanAgg {
			res, err := fp.agg.Finalize(nil)
			if err != nil {
				return nil, err
			}
			cur = &listCursor{vars: res.Vars, rows: res.Rows}
		}
		cur.setCacheVector(vec, cacheable)
		return cur, nil
	}
	release := s.lockRead(dec.shards)
	vec := s.fanVector(dec.keyShards)
	if !s.recheckFanout(where, dec) {
		release()
		return s.unionStream(ctx, src, q, cacheable)
	}
	evs := make([]*stsparql.Evaluator, len(dec.shards))
	cs := make([]*stsparql.Compiled, len(dec.shards))
	for i, idx := range dec.shards {
		evs[i] = stsparql.NewEvaluatorWithCache(s.view(idx), s.cache)
		cs[i] = evs[i].CompileASTCached(fp.key, s.genFor(idx), s.sliceCache(idx), fp.shardQ)
	}
	m := startMerge(ctx, fp, evs, cs, release)
	m.vec, m.cacheable = vec, cacheable
	return m, nil
}

// askFanout evaluates an ASK shard by shard under one lock acquisition,
// stopping at the first shard with a solution. Cancellation is honoured
// between shards — the blast radius of a cancelled context is one
// shard's eager evaluation.
func (s *Store) askFanout(ctx context.Context, src string, q *stsparql.Query, dec decision, where *stsparql.GroupPattern, cacheable bool) (strabon.QueryCursor, error) {
	if len(dec.shards) == 0 {
		// Lock-free path; see fanoutStream for the capture-ordering
		// argument.
		vec := s.fanVector(dec.keyShards)
		if !s.recheckFanout(where, dec) {
			return s.unionStream(ctx, src, q, cacheable)
		}
		res := askResult(false)
		res.setCacheVector(vec, cacheable)
		return res, nil
	}
	release := s.lockRead(dec.shards)
	vec := s.fanVector(dec.keyShards)
	if !s.recheckFanout(where, dec) {
		release()
		return s.unionStream(ctx, src, q, cacheable)
	}
	defer release()
	for _, idx := range dec.shards {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ev := stsparql.NewEvaluatorWithCache(s.view(idx), s.cache)
		c := ev.CompileASTCached(src, s.genFor(idx), s.sliceCache(idx), q)
		ok, err := ev.AskCompiled(c)
		if err != nil {
			return nil, err
		}
		if ok {
			res := askResult(true)
			res.setCacheVector(vec, cacheable)
			return res, nil
		}
	}
	res := askResult(false)
	res.setCacheVector(vec, cacheable)
	return res, nil
}

// Explain renders the routing decision — fan-out with the relevant
// shard set and merge strategy, or the union-view fallback — followed
// by the member-level evaluation plan.
func (s *Store) Explain(src string) (string, error) {
	q, err := stsparql.Parse(src, s.ns)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	n := len(s.slices)

	inner := func(idxs []int, query *stsparql.Query) error {
		var ev *stsparql.Evaluator
		var release func()
		if idxs == nil {
			release = s.lockAllRead()
			ev = stsparql.NewEvaluatorWithCache(s.viewAll(), s.cache)
		} else {
			release = s.lockRead(idxs[:1])
			ev = stsparql.NewEvaluatorWithCache(s.view(idxs[0]), s.cache)
		}
		defer release()
		plan, err := ev.Explain(query)
		if err != nil {
			return err
		}
		b.WriteString(plan)
		return nil
	}

	var where *stsparql.GroupPattern
	label := "fan-out"
	switch {
	case q.Select != nil:
		where = q.Select.Where
	case q.Ask != nil:
		where = q.Ask.Where
	case q.Update != nil:
		where = q.Update.Where
		label = "scoped-update fan-out"
	}
	dec := s.analyzeGroup(where)

	shardQ, merge := q, "ask"
	if dec.fanout && q.Select != nil {
		fp, ok := planFanout(src, q)
		if !ok {
			dec.fanout = false
		} else {
			shardQ, merge = fp.shardQ, fp.mode.String()
		}
	}
	if q.Update != nil {
		merge = "per-shard apply"
	}

	if !dec.fanout {
		fmt.Fprintf(&b, "shard union: single evaluation over static+%d slices\n", n)
		return b.String(), inner(nil, q)
	}
	fmt.Fprintf(&b, "shard %s: %d/%d slices %v merge=%s\n", label, len(dec.shards), n, dec.shards, merge)
	if len(dec.shards) < len(dec.keyShards) {
		fmt.Fprintf(&b, "  (observed time ranges prune %v of window candidates %v)\n",
			diffInts(dec.keyShards, dec.shards), dec.keyShards)
	}
	if len(dec.shards) == 0 {
		b.WriteString("  (no slice intersects the query window)\n")
		return b.String(), nil
	}
	return b.String(), inner(dec.shards, shardQ)
}

// diffInts returns the members of a absent from b (both ascending).
func diffInts(a, b []int) []int {
	in := make(map[int]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	var out []int
	for _, x := range a {
		if !in[x] {
			out = append(out, x)
		}
	}
	return out
}
