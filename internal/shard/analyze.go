package shard

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/stsparql"
)

// ExplainAnalyze executes a SELECT or ASK through the real routed
// paths — fan-out with per-shard workers and the merge cursor, or the
// union-view fallback — with every member evaluator's operators
// instrumented, and renders the routing header (same shape as Explain)
// followed by each shard's plan annotated with actuals and the merge
// output count. Locking mirrors QueryStreamCtx exactly: read locks on
// the relevant members for the duration of the drain, released before
// rendering (the merge shutdown waits for the workers, so the trace
// atomics are quiescent by the time they are read).
func (s *Store) ExplainAnalyze(ctx context.Context, src string) (string, error) {
	q, err := stsparql.Parse(src, s.ns)
	if err != nil {
		return "", err
	}
	if q.Update != nil {
		return "", fmt.Errorf("shard: ExplainAnalyze wants SELECT or ASK")
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	s.countQuery()
	var where *stsparql.GroupPattern
	if q.Select != nil {
		where = q.Select.Where
	} else {
		where = q.Ask.Where
	}
	n := len(s.slices)
	dec := s.analyzeGroup(where)
	if !dec.fanout {
		return s.analyzeUnion(ctx, src, q, n)
	}
	if q.Select == nil {
		return s.analyzeAskFanout(ctx, src, q, dec, where, n)
	}
	fp, ok := planFanout(src, q)
	if !ok {
		return s.analyzeUnion(ctx, src, q, n)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "shard fan-out: %d/%d slices %v merge=%s (analyze)\n",
		len(dec.shards), n, dec.shards, fp.mode)
	if len(dec.shards) < len(dec.keyShards) {
		fmt.Fprintf(&b, "  (observed time ranges prune %v of window candidates %v)\n",
			diffInts(dec.keyShards, dec.shards), dec.keyShards)
	}
	start := time.Now()
	if len(dec.shards) == 0 {
		b.WriteString("  (no slice intersects the query window)\n")
		rows := 0
		if fp.mode == fanAgg {
			// The implicit group still owes its row (COUNT over nothing = 0).
			res, err := fp.agg.Finalize(nil)
			if err != nil {
				return "", err
			}
			rows = len(res.Rows)
		}
		fmt.Fprintf(&b, "total: rows=%d time=%v\n", rows, time.Since(start).Round(time.Microsecond))
		return b.String(), nil
	}
	release := s.lockRead(dec.shards)
	if !s.recheckFanout(where, dec) {
		release()
		return s.analyzeUnion(ctx, src, q, n)
	}
	evs := make([]*stsparql.Evaluator, len(dec.shards))
	cs := make([]*stsparql.Compiled, len(dec.shards))
	trs := make([]*stsparql.ExecTrace, len(dec.shards))
	for i, idx := range dec.shards {
		evs[i] = stsparql.NewEvaluatorWithCache(s.view(idx), s.cache)
		cs[i] = evs[i].CompileASTCached(fp.key, s.genFor(idx), s.sliceCache(idx), fp.shardQ)
		trs[i] = stsparql.NewExecTrace(cs[i])
		evs[i].SetTrace(trs[i])
	}
	m := startMerge(ctx, fp, evs, cs, release)
	rows, err := drainMerged(ctx, m)
	if err != nil {
		return "", err
	}
	// Workers have exited (Close waits on them), so the per-shard trace
	// counters are final.
	for i, idx := range dec.shards {
		fmt.Fprintf(&b, "  shard[%d]:\n", idx)
		b.WriteString(indentLines(trs[i].Render(cs[i]), "  "))
	}
	fmt.Fprintf(&b, "merge[%s]: rows=%d\n", fp.mode, rows)
	fmt.Fprintf(&b, "total: rows=%d time=%v\n", rows, time.Since(start).Round(time.Microsecond))
	return b.String(), nil
}

// analyzeUnion is the instrumented union-view fallback: one traced
// evaluation over static plus every slice, under all member read locks.
func (s *Store) analyzeUnion(ctx context.Context, src string, q *stsparql.Query, n int) (string, error) {
	release := s.lockAllRead()
	defer release()
	ev := stsparql.NewEvaluatorWithCache(s.viewAll(), s.cache)
	c := ev.CompileASTCached(src, s.genAll(), s.unionCache(), q)
	tr := stsparql.NewExecTrace(c)
	ev.SetTrace(tr)
	var b strings.Builder
	fmt.Fprintf(&b, "shard union: single evaluation over static+%d slices (analyze)\n", n)
	start := time.Now()
	switch {
	case c.IsSelect():
		cur, err := ev.RunCompiled(c)
		if err != nil {
			return "", err
		}
		rows, err := drainShardInner(ctx, cur)
		if err != nil {
			return "", err
		}
		b.WriteString(tr.Render(c))
		fmt.Fprintf(&b, "total: rows=%d time=%v\n", rows, time.Since(start).Round(time.Microsecond))
	case c.IsAsk():
		ok, err := ev.AskCompiled(c)
		if err != nil {
			return "", err
		}
		b.WriteString(tr.Render(c))
		fmt.Fprintf(&b, "total: ask=%v time=%v\n", ok, time.Since(start).Round(time.Microsecond))
	default:
		return "", fmt.Errorf("shard: unsupported query form")
	}
	return b.String(), nil
}

// analyzeAskFanout mirrors askFanout — eager shard-by-shard evaluation
// under one lock acquisition, stopping at the first shard with a
// solution — with each shard's plan traced and rendered.
func (s *Store) analyzeAskFanout(ctx context.Context, src string, q *stsparql.Query, dec decision, where *stsparql.GroupPattern, n int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "shard fan-out: %d/%d slices %v merge=ask (analyze)\n", len(dec.shards), n, dec.shards)
	if len(dec.shards) < len(dec.keyShards) {
		fmt.Fprintf(&b, "  (observed time ranges prune %v of window candidates %v)\n",
			diffInts(dec.keyShards, dec.shards), dec.keyShards)
	}
	start := time.Now()
	if len(dec.shards) == 0 {
		b.WriteString("  (no slice intersects the query window)\n")
		fmt.Fprintf(&b, "total: ask=false time=%v\n", time.Since(start).Round(time.Microsecond))
		return b.String(), nil
	}
	release := s.lockRead(dec.shards)
	if !s.recheckFanout(where, dec) {
		release()
		return s.analyzeUnion(ctx, src, q, n)
	}
	defer release()
	verdict := false
	for _, idx := range dec.shards {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		ev := stsparql.NewEvaluatorWithCache(s.view(idx), s.cache)
		c := ev.CompileASTCached(src, s.genFor(idx), s.sliceCache(idx), q)
		tr := stsparql.NewExecTrace(c)
		ev.SetTrace(tr)
		ok, err := ev.AskCompiled(c)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  shard[%d]: ask=%v\n", idx, ok)
		b.WriteString(indentLines(tr.Render(c), "  "))
		if ok {
			verdict = true
			break
		}
	}
	fmt.Fprintf(&b, "total: ask=%v time=%v\n", verdict, time.Since(start).Round(time.Microsecond))
	return b.String(), nil
}

// drainMerged pulls the merge cursor dry and closes it (Close waits for
// the workers and releases the shard read locks), returning the merged
// row count. mergeCursor.Next checks ctx itself on every pull.
func drainMerged(ctx context.Context, m *mergeCursor) (int, error) {
	defer m.Close()
	n := 0
	for {
		if _, ok := m.Next(); !ok {
			break
		}
		n++
	}
	if err := m.Close(); err != nil {
		return n, err
	}
	return n, ctx.Err()
}

// drainShardInner pulls a member-level cursor dry under per-row context
// checks and closes it.
func drainShardInner(ctx context.Context, cur stsparql.Cursor) (int, error) {
	defer cur.Close()
	n := 0
	for {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		if _, ok := cur.Next(); !ok {
			break
		}
		n++
	}
	return n, cur.Close()
}

// indentLines prefixes every non-empty line of s.
func indentLines(s, prefix string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(s, "\n") {
		if line == "" {
			continue
		}
		b.WriteString(prefix)
		b.WriteString(line)
	}
	return b.String()
}
