package shard

import (
	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

// view is the composite triple source one shard evaluation runs over:
// the static store plus zero or more slices, presented to the engine as
// a single stsparql Source/StatSource/SpatialSource. The members
// partition the data (nothing is replicated), so concatenating their
// scans and summing their statistics is exact. The caller holds every
// member's lock for the lifetime of the evaluation — the view itself
// calls only the unlocked stsparql interface methods.
//
// A view deliberately does NOT implement stsparql.IDSource: each member
// store owns its own dictionary, so one term maps to different IDs in
// different members and no single ID space covers the composite. The
// engine detects this and runs in local-dictionary mode — scan output
// is interned into an evaluation-local dictionary, preserving the
// ID-native operator pipeline at the cost of one intern per scanned
// term (see stsparql/iddict.go).
type view struct {
	members []*strabon.Store
}

var _ stsparql.StatSource = view{}
var _ stsparql.SpatialSource = view{}

// view returns the composite source of one slice evaluation.
func (s *Store) view(idx int) view {
	return view{members: []*strabon.Store{s.static, s.slices[idx]}}
}

// members enumerates every member store, static first then slices
// ascending — the canonical order of lock acquisition and routed
// application.
func (s *Store) members() []*strabon.Store {
	out := make([]*strabon.Store, 0, len(s.slices)+1)
	out = append(out, s.static)
	return append(out, s.slices...)
}

// viewAll returns the union view over every member store.
func (s *Store) viewAll() view {
	return view{members: s.members()}
}

// MatchTerms implements stsparql.Source: member scans concatenate, with
// the visitor's early stop propagating across members.
func (v view) MatchTerms(sub, pred, obj rdf.Term, visit func(rdf.Triple) bool) {
	cont := true
	wrapped := func(t rdf.Triple) bool {
		cont = visit(t)
		return cont
	}
	for _, m := range v.members {
		if !cont {
			return
		}
		m.MatchTerms(sub, pred, obj, wrapped)
	}
}

// CountPattern implements stsparql.StatSource (exact: members are
// disjoint).
func (v view) CountPattern(sub, pred, obj rdf.Term) int {
	n := 0
	for _, m := range v.members {
		n += m.CountPattern(sub, pred, obj)
	}
	return n
}

// PredicateCard implements stsparql.StatSource. The distinct counts sum
// member-wise — an overestimate when a subject or object spans members,
// which only skews estimates, never results.
func (v view) PredicateCard(pred rdf.Term) (triples, distinctS, distinctO int) {
	for _, m := range v.members {
		t, ds, do := m.PredicateCard(pred)
		triples += t
		distinctS += ds
		distinctO += do
	}
	return
}

// StoreCard implements stsparql.StatSource.
func (v view) StoreCard() (triples, subjects, predicates, objects int) {
	for _, m := range v.members {
		t, s2, p2, o2 := m.StoreCard()
		triples += t
		subjects += s2
		predicates += p2
		objects += o2
	}
	return
}

// SpatialIndexEnabled implements stsparql.SpatialSource: the window
// path is available only when every member can serve it.
func (v view) SpatialIndexEnabled() bool {
	for _, m := range v.members {
		if !m.SpatialIndexEnabled() {
			return false
		}
	}
	return true
}

// MatchGeometryWindow implements stsparql.SpatialSource: every member's
// R-tree is searched, with early stop propagating.
func (v view) MatchGeometryWindow(env geom.Envelope, visit func(rdf.Triple) bool) {
	cont := true
	wrapped := func(t rdf.Triple) bool {
		cont = visit(t)
		return cont
	}
	for _, m := range v.members {
		if !cont {
			return
		}
		m.MatchGeometryWindow(env, wrapped)
	}
}
