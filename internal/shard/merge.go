package shard

import (
	"context"
	"sort"
	"sync"

	"repro/internal/rdf"
	"repro/internal/resultcache"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

// Fan-out execution: one worker goroutine per relevant shard pulls that
// shard's cursor and feeds a buffered channel; the merge cursor combines
// the streams per the query shape. The caller (fanoutStream) acquires
// the read locks before the workers start and the merge cursor releases
// them at shutdown — after every worker has exited, since workers scan
// the locked stores.
//
// The fan-out boundary is also the engine's late-materialisation
// boundary: each shard evaluation runs ID-native over its own
// dictionary, and dictionary IDs are meaningless outside their owning
// evaluation — so rows cross between shard cursors and the merge as
// decoded terms (the Clone below materialises them), never as IDs.

// fanMode selects the merge strategy.
type fanMode int

const (
	fanConcat  fanMode = iota // plain SELECT: streaming concatenation
	fanOrdered                // ORDER BY: k-way merge of pre-sorted streams
	fanAgg                    // grouped: partial-aggregate recombination
)

func (m fanMode) String() string {
	switch m {
	case fanOrdered:
		return "ordered"
	case fanAgg:
		return "partial-aggregate"
	default:
		return "concat"
	}
}

// fanPlan is the merge-side plan of one fanned-out SELECT.
type fanPlan struct {
	mode   fanMode
	shardQ *stsparql.Query // per-shard AST (possibly rewritten)
	key    string          // plan-cache key (distinct per rewrite)
	agg    *stsparql.AggMerge
	cmp    func(a, b stsparql.Binding) int

	distinct      bool     // re-deduplicate at the merger
	offset, limit int      // merger-side slice; limit -1 = none
	vars          []string // static header (nil for SELECT *)
}

// planFanout derives the per-shard query and merge strategy for a
// SELECT. ok=false means the query is grouped in a way partial
// aggregation cannot recombine — the caller falls back to the union
// view.
func planFanout(src string, q *stsparql.Query) (*fanPlan, bool) {
	sel := q.Select
	if stsparql.IsGrouped(sel) {
		am, ok := stsparql.PlanAggMerge(sel)
		if !ok {
			return nil, false
		}
		return &fanPlan{
			mode: fanAgg, shardQ: am.Partial(), key: src + "\x00agg",
			agg: am, limit: -1, vars: am.Vars(),
		}, true
	}
	fp := &fanPlan{mode: fanConcat, distinct: sel.Distinct, offset: sel.Offset, limit: sel.Limit}
	if len(sel.OrderBy) > 0 {
		fp.mode = fanOrdered
		fp.cmp = stsparql.NewOrderComparator(sel.OrderBy)
	}
	if sel.Offset > 0 || sel.Limit >= 0 {
		// Per-shard rewrite: each shard computes the first OFFSET+LIMIT
		// rows of its own stream (under ORDER BY that engages the
		// engine's top-k heap); the true OFFSET/LIMIT re-applies at the
		// merger over the combined stream.
		cp := *sel
		cp.Offset = 0
		if sel.Limit >= 0 {
			cp.Limit = sel.Offset + sel.Limit
		}
		fp.shardQ = &stsparql.Query{Select: &cp}
		fp.key = src + "\x00shard"
	} else {
		fp.shardQ = q
		fp.key = src
	}
	if !sel.Star {
		for _, item := range sel.Projection {
			fp.vars = append(fp.vars, item.Var)
		}
	}
	return fp, true
}

// listCursor is a materialised QueryCursor (ASK verdicts, recombined
// aggregates, empty prunes).
type listCursor struct {
	vars    []string
	rows    []stsparql.Binding
	pos     int
	yielded int
	ask     bool
	err     error

	vec       resultcache.GenVector
	hasVec    bool
	cacheable bool
}

func (c *listCursor) Vars() []string { return c.vars }
func (c *listCursor) IsAsk() bool    { return c.ask }
func (c *listCursor) Err() error     { return c.err }
func (c *listCursor) Rows() int      { return c.yielded }

// setCacheVector attaches the generation vector the rows were derived
// under; cacheable=false (SAMPLE plans) keeps the result out of caches.
func (c *listCursor) setCacheVector(v resultcache.GenVector, cacheable bool) {
	c.vec, c.hasVec, c.cacheable = v, true, cacheable
}

// CacheVector implements strabon.CacheInfo.
func (c *listCursor) CacheVector() (resultcache.GenVector, bool) {
	return c.vec, c.hasVec && c.cacheable
}

func (c *listCursor) Next() (stsparql.Binding, bool) {
	if c.pos >= len(c.rows) {
		return nil, false
	}
	r := c.rows[c.pos]
	c.pos++
	c.yielded++
	return r, true
}

func (c *listCursor) Close() error {
	c.pos = len(c.rows)
	return c.err
}

func askResult(ok bool) *listCursor {
	return &listCursor{
		vars: []string{"ask"},
		rows: []stsparql.Binding{{"ask": rdf.NewBoolean(ok)}},
		ask:  true,
	}
}

// chunkRows is the worker-to-merger transfer unit: rows are cloned out
// of the engine's reused cursor view and shipped in chunks, amortising
// the channel synchronisation over many rows.
const chunkRows = 128

// shardStream is one worker's output.
type shardStream struct {
	ch      chan []stsparql.Binding
	ready   chan struct{} // closed once vars (or an open error) are set
	vars    []string
	err     error // valid once ch is closed
	buf     []stsparql.Binding
	pos     int
	head    stsparql.Binding
	hasHead bool
	drained bool
}

// mergeCursor combines the shard streams into one QueryCursor.
type mergeCursor struct {
	plan    *fanPlan
	ctx     context.Context
	stop    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
	release func()

	streams []*shardStream
	vars    []string

	cur int         // concat: current stream
	agg *listCursor // fanAgg: recombined output

	seen             map[string]bool
	kb               []byte
	skipped, emitted int
	yielded          int

	vec       resultcache.GenVector
	cacheable bool

	err    error
	done   bool
	closed bool
}

// CacheVector implements strabon.CacheInfo: the generation vector
// fanoutStream captured under the shard read locks, before the workers
// started reading.
func (m *mergeCursor) CacheVector() (resultcache.GenVector, bool) {
	return m.vec, m.cacheable
}

// startMerge launches one worker per compiled shard plan and returns the
// merge cursor. The caller holds the read locks release will free.
func startMerge(ctx context.Context, fp *fanPlan, evs []*stsparql.Evaluator, cs []*stsparql.Compiled, release func()) *mergeCursor {
	m := &mergeCursor{plan: fp, ctx: ctx, stop: make(chan struct{}), release: release}
	for range cs {
		m.streams = append(m.streams, &shardStream{
			ch:    make(chan []stsparql.Binding, 4),
			ready: make(chan struct{}),
		})
	}
	m.wg.Add(len(cs))
	for i := range cs {
		go m.run(evs[i], cs[i], m.streams[i])
	}
	if fp.vars != nil {
		m.vars = fp.vars
	} else {
		// SELECT *: the merged header is the sorted union of the shard
		// headers (a shard's vars are known as soon as its plan opens).
		set := make(map[string]bool)
		for _, st := range m.streams {
			<-st.ready
			for _, v := range st.vars {
				set[v] = true
			}
		}
		for v := range set {
			m.vars = append(m.vars, v)
		}
		sort.Strings(m.vars)
	}
	return m
}

func (m *mergeCursor) run(ev *stsparql.Evaluator, c *stsparql.Compiled, st *shardStream) {
	defer m.wg.Done()
	defer close(st.ch)
	cur, err := ev.RunCompiled(c)
	if err != nil {
		st.err = err
		close(st.ready)
		return
	}
	st.vars = cur.Vars()
	close(st.ready)
	defer cur.Close()
	chunk := make([]stsparql.Binding, 0, chunkRows)
	for {
		row, ok := cur.Next()
		if !ok {
			st.err = cur.Err()
			if len(chunk) > 0 && st.err == nil {
				select {
				case st.ch <- chunk:
				case <-m.stop:
				}
			}
			return
		}
		// The cursor's row is a view reused on the next Next; it crosses
		// a goroutine boundary here, so it must be cloned out.
		chunk = append(chunk, row.Clone())
		if len(chunk) == chunkRows {
			select {
			case st.ch <- chunk:
			case <-m.stop:
				return
			}
			chunk = make([]stsparql.Binding, 0, chunkRows)
		}
	}
}

// nextRow returns one stream's next row, pulling a fresh chunk when the
// buffered one is spent. ok=false means the stream is exhausted, its
// worker failed, or the context fired — the latter two set m.err.
func (m *mergeCursor) nextRow(st *shardStream) (stsparql.Binding, bool) {
	for {
		if st.pos < len(st.buf) {
			row := st.buf[st.pos]
			st.pos++
			return row, true
		}
		select {
		case chunk, ok := <-st.ch:
			if !ok {
				if st.err != nil {
					m.fail(st.err)
				}
				return nil, false
			}
			st.buf, st.pos = chunk, 0
		case <-m.ctx.Done():
			m.fail(m.ctx.Err())
			return nil, false
		}
	}
}

func (m *mergeCursor) Vars() []string { return m.vars }
func (m *mergeCursor) IsAsk() bool    { return false }
func (m *mergeCursor) Err() error     { return m.err }
func (m *mergeCursor) Rows() int      { return m.yielded }

func (m *mergeCursor) Next() (stsparql.Binding, bool) {
	if m.closed || m.done || m.err != nil {
		return nil, false
	}
	if err := m.ctx.Err(); err != nil {
		m.fail(err)
		return nil, false
	}
	if m.plan.mode == fanAgg {
		if m.agg == nil && !m.finalizeAgg() {
			return nil, false
		}
		row, ok := m.agg.Next()
		if ok {
			m.yielded++
		}
		return row, ok
	}
	for {
		if m.plan.limit >= 0 && m.emitted >= m.plan.limit {
			m.done = true
			m.shutdown()
			return nil, false
		}
		var row stsparql.Binding
		var ok bool
		if m.plan.mode == fanOrdered {
			row, ok = m.pullOrdered()
		} else {
			row, ok = m.pullConcat()
		}
		if !ok {
			if m.err == nil {
				m.done = true
			}
			m.shutdown() // exhausted (or failed): release locks now
			return nil, false
		}
		if m.plan.distinct {
			if m.seen == nil {
				m.seen = make(map[string]bool)
			}
			m.kb = stsparql.RowKey(m.kb[:0], row, m.vars)
			if m.seen[string(m.kb)] {
				continue
			}
			m.seen[string(m.kb)] = true
		}
		if m.skipped < m.plan.offset {
			m.skipped++
			continue
		}
		m.emitted++
		m.yielded++
		return row, true
	}
}

// pullConcat streams the shards one after another — shard order, with
// every worker prefetching into its buffer concurrently.
func (m *mergeCursor) pullConcat() (stsparql.Binding, bool) {
	for m.cur < len(m.streams) {
		row, ok := m.nextRow(m.streams[m.cur])
		if !ok {
			if m.err != nil {
				return nil, false
			}
			m.cur++
			continue
		}
		return row, true
	}
	return nil, false
}

// pullOrdered k-way merges the pre-sorted shard streams: one lookahead
// row per stream, emitting the smallest under the ORDER BY comparator
// (ties to the lower shard, keeping the merge deterministic).
func (m *mergeCursor) pullOrdered() (stsparql.Binding, bool) {
	for _, st := range m.streams {
		if st.drained || st.hasHead {
			continue
		}
		row, ok := m.nextRow(st)
		if !ok {
			if m.err != nil {
				return nil, false
			}
			st.drained = true
			continue
		}
		st.head, st.hasHead = row, true
	}
	best := -1
	for i, st := range m.streams {
		if !st.hasHead {
			continue
		}
		if best < 0 || m.plan.cmp(st.head, m.streams[best].head) < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	row := m.streams[best].head
	m.streams[best].head, m.streams[best].hasHead = nil, false
	return row, true
}

// finalizeAgg is the barrier of the aggregate merge: every shard's
// partial rows are drained, the read locks released, and the groups
// recombined into the final materialised result.
func (m *mergeCursor) finalizeAgg() bool {
	var rows []stsparql.Binding
	for _, st := range m.streams {
		for {
			row, ok := m.nextRow(st)
			if !ok {
				if m.err != nil {
					return false
				}
				break
			}
			rows = append(rows, row)
		}
	}
	m.shutdown() // partials shipped: recombination needs no locks
	res, err := m.plan.agg.Finalize(rows)
	if err != nil {
		m.err = err
		return false
	}
	m.vars = res.Vars
	m.agg = &listCursor{vars: res.Vars, rows: res.Rows}
	return true
}

func (m *mergeCursor) fail(err error) {
	m.err = err
	m.shutdown()
}

// shutdown stops the workers, waits for them to exit (they scan the
// locked stores), then releases the read locks. Idempotent.
func (m *mergeCursor) shutdown() {
	m.once.Do(func() {
		close(m.stop)
		m.wg.Wait()
		if m.release != nil {
			m.release()
		}
	})
}

// Close terminates the fan-out, releasing every shard read lock.
func (m *mergeCursor) Close() error {
	m.closed = true
	m.shutdown()
	return m.err
}

// unionCursor wraps a single union-view evaluation, holding every
// member read lock until Close.
type unionCursor struct {
	inner   stsparql.Cursor
	ctx     context.Context
	release func()
	yielded int
	err     error
	closed  bool

	vec       resultcache.GenVector
	cacheable bool
}

// CacheVector implements strabon.CacheInfo: the full generation vector
// captured under every member's read lock.
func (c *unionCursor) CacheVector() (resultcache.GenVector, bool) {
	return c.vec, c.cacheable
}

var _ strabon.QueryCursor = (*unionCursor)(nil)
var _ strabon.QueryCursor = (*mergeCursor)(nil)
var _ strabon.QueryCursor = (*listCursor)(nil)

func (c *unionCursor) Vars() []string { return c.inner.Vars() }
func (c *unionCursor) IsAsk() bool    { return false }
func (c *unionCursor) Rows() int      { return c.yielded }

func (c *unionCursor) Next() (stsparql.Binding, bool) {
	if c.closed || c.err != nil {
		return nil, false
	}
	if err := c.ctx.Err(); err != nil {
		c.err = err
		c.releaseNow()
		return nil, false
	}
	row, ok := c.inner.Next()
	if ok {
		c.yielded++
	}
	return row, ok
}

func (c *unionCursor) Err() error {
	if c.err != nil {
		return c.err
	}
	return c.inner.Err()
}

func (c *unionCursor) releaseNow() {
	c.inner.Close()
	if c.release != nil {
		c.release()
		c.release = nil
	}
}

func (c *unionCursor) Close() error {
	if !c.closed {
		c.closed = true
		c.releaseNow()
	}
	return c.Err()
}
