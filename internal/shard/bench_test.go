package shard

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/products"
	"repro/internal/strabon"
)

// BenchmarkShardedQueries compares single-store vs sharded read
// throughput on the paper's dominant workload shape — "hotspots in
// acquisition window X" joined against reference data — while a writer
// keeps appending acquisitions to the live slice. On the sharded store
// the historical window prunes to one slice and never contends with the
// writer's shard-local lock; on the single store every query queues
// behind every write. Run with -cpu 1,4: like the pipeline bench, the
// spread only shows on multicore hosts (the CI/dev container is 1-CPU,
// where the variants converge).
func BenchmarkShardedQueries(b *testing.B) {
	benchProducts := func(hours int) []*products.Product {
		var out []*products.Product
		for i := 0; i < hours*4; i++ {
			at := day.Add(time.Duration(i) * 15 * time.Minute)
			p := &products.Product{Sensor: "MSG1", Chain: "bench", AcquiredAt: at}
			for j := 0; j < 6; j++ {
				p.Hotspots = append(p.Hotspots, products.Hotspot{
					ID:         fmt.Sprintf("b%d_%d", i, j),
					Geometry:   geom.NewSquare(float64((i+5*j)%19)+0.5, 5, 0.5),
					Confidence: 0.5 + 0.5*float64((i+j)%2),
					AcquiredAt: at, Sensor: "MSG1", Chain: "bench", Producer: "noa",
				})
			}
			out = append(out, p)
		}
		return out
	}
	load := func(st strabon.API) {
		st.LoadTriples(staticTriples())
		for _, p := range benchProducts(12) {
			st.InsertAll(p.Triples())
		}
	}
	// The window is the scenario's first hour: on the 4-slice store it
	// prunes to 1/4 shards, far from the live slice the writer hits.
	q := `SELECT ?h ?m WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?hg .
  ?m a gag:Municipality ; strdf:hasGeometry ?mg .
  FILTER( str(?at) >= "2007-08-25T00:00:00" )
  FILTER( str(?at) <= "2007-08-25T00:59:00" )
  FILTER( strdf:anyInteract(?hg, ?mg) )
}`

	for _, tc := range []struct {
		name string
		mk   func() strabon.API
	}{
		{"single", func() strabon.API { return strabon.New() }},
		{"sharded4", func() strabon.API {
			return New(Config{Slices: 4, Width: time.Hour, Epoch: day})
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			st := tc.mk()
			load(st)
			stop := make(chan struct{})
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					at := day.Add(13*time.Hour + time.Duration(i)*5*time.Minute)
					p := &products.Product{Sensor: "MSG1", Chain: "bench", AcquiredAt: at}
					p.Hotspots = append(p.Hotspots, products.Hotspot{
						ID: fmt.Sprintf("w%d", i), Geometry: geom.NewSquare(3, 5, 0.5),
						Confidence: 1.0, AcquiredAt: at, Sensor: "MSG1", Chain: "bench", Producer: "noa",
					})
					st.InsertAll(p.Triples())
					time.Sleep(100 * time.Microsecond)
				}
			}()
			rows := 0
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					res, err := st.Query(q)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) == 0 {
						b.Fatal("windowed query returned no rows")
					}
					rows = len(res.Rows)
				}
			})
			b.StopTimer()
			close(stop)
			<-writerDone
			b.ReportMetric(float64(rows), "rows/req")
		})
	}
}
