// Package shard implements the sharded Strabon store of the scaling
// roadmap: the accumulated acquisition history is partitioned into N
// time-range slices — each its own strabon.Store with its own RWMutex,
// R-tree and compiled-plan cache — plus a catch-all store for the
// static/georeference datasets (municipalities, coastline, land cover),
// all behind the same strabon.API the endpoint and the serving binaries
// already consume.
//
// # Partitioning
//
// Writes route by acquisition timestamp: a triple group carrying a
// noa:hasAcquisitionDateTime literal goes to the slice owning that
// timestamp's time bucket (bucket = (t-epoch)/width, assigned to slices
// round-robin), and everything else goes to the static store. Data is
// partitioned, never replicated — the union of the member stores is
// exactly the dataset a single store would hold.
//
// # Evaluation
//
// A query is first analysed (route.go): if every solution provably
// derives from the triples of one slice plus the static data — the
// dominant workload shape, "hotspots in acquisition window X" joined
// against reference datasets — the compiled plan fans out to the
// relevant slices concurrently, each evaluated over a composite view
// (static + that slice), and the per-shard cursors merge (merge.go):
// streaming concatenation for plain SELECTs, k-way ordered merge for
// ORDER BY (each shard pre-truncated to its top-k by the engine's
// bounded-heap order operator), and partial-aggregate recombination
// (COUNT/SUM/MIN/MAX, AVG as SUM+COUNT) for grouped queries, with
// DISTINCT and OFFSET/LIMIT re-applied at the merger. Time-constrained
// queries prune the fan-out to the slices intersecting their window.
//
// Queries the analysis cannot prove decomposable evaluate exactly once
// over the union view of every member store — always correct, just not
// parallel. Either way results are row-for-row identical to a single
// store's (up to ORDER-BY-mandated order), the property the equivalence
// suite pins.
//
// # Locking
//
// Locks are shard-local: a write to the live slice takes only that
// slice's write lock, so queries over historical slices (and their
// static join partners) proceed untouched — the conversion of the
// store-global write bottleneck into a shard-local one. A fan-out
// cursor holds read locks on the static store and the relevant slices
// (acquired in fixed order: static, then slices ascending) until Close;
// a union-view cursor holds all of them. Cross-store write locks are
// only ever taken by atomic Update, in the same fixed order.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/resultcache"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

// Config sizes a sharded store.
type Config struct {
	// Slices is the number of time-range shards (at least 1).
	Slices int
	// Width is the time span of one routing bucket (default 1h).
	// Buckets are assigned to slices round-robin, so any query window
	// narrower than Width*Slices prunes to fewer than Slices shards.
	Width time.Duration
	// Epoch aligns bucket boundaries (default 2000-01-01T00:00:00Z).
	Epoch time.Time
	// TimePredicate is the acquisition-timestamp predicate routing
	// triple groups (default noa:hasAcquisitionDateTime).
	TimePredicate string
	// PlanCacheSize bounds each per-shard compiled-plan cache
	// (default 256; <0 disables).
	PlanCacheSize int
}

// Store is the sharded Strabon store. It implements strabon.API.
type Store struct {
	cfg    Config
	width  int64 // bucket width, seconds
	epoch  int64 // bucket origin, unix seconds
	static *strabon.Store
	slices []*strabon.Store
	ns     *rdf.Namespaces
	cache  *stsparql.Cache // shared geometry-parse cache

	// Compiled-plan caches: one per slice view plus one for the union
	// view. Guarded by planMu only for replacement (SetPlanCacheSize);
	// the caches themselves are concurrency-safe.
	planMu  sync.RWMutex
	caches  []*stsparql.PlanCache
	unionPC *stsparql.PlanCache

	// Routing knowledge, updated at insert time and read by the query
	// analysis: which predicates (and rdf:type objects) have ever been
	// routed to slices vs the static store, and the observed
	// acquisition-time range per slice. Guarded by routeMu.
	routeMu     sync.RWMutex
	slicePreds  map[string]bool
	staticPreds map[string]bool
	sliceTypes  map[string]bool
	staticTypes map[string]bool
	sliceMin    []time.Time
	sliceMax    []time.Time

	// knowGen is the routing-knowledge generation: it advances whenever
	// the predicate or rdf:type provenance sets above gain a member —
	// the events that can flip a query's fan-out verdict without
	// touching any member store the query read. Partial result-cache
	// vectors are pinned to it (see fanVector); in steady state the
	// vocabulary is fixed and it never moves. Pure observed-range
	// extension does NOT advance it: the write extending a range bumps
	// its own slice's generation, which the affected vectors carry.
	knowGen atomic.Uint64

	// writeMu serialises the write paths: routing is check-then-act
	// (probe a subject's home, then insert), so concurrent writers
	// could otherwise split one subject across slices without the
	// latch below noticing. Readers never take it — the shard-local
	// claim (writes don't block reads on other shards) is about
	// queries, and those only take member read locks.
	writeMu sync.Mutex

	// split latches when a write is observed to violate co-location —
	// a subject landing away from its existing home, or one group
	// carrying acquisition times in different buckets — the invariants
	// the fan-out analysis needs. Once set, every query takes the
	// exact union view: correctness is preserved under arbitrary API
	// use, and only fan-out parallelism is lost (the well-formed
	// producers never trigger it).
	split atomic.Bool

	statsMu sync.Mutex
	queries int
	updates int
}

var _ strabon.API = (*Store)(nil)
var _ strabon.ShardStatser = (*Store)(nil)

// New returns an empty sharded store.
func New(cfg Config) *Store {
	if cfg.Slices < 1 {
		cfg.Slices = 1
	}
	if cfg.Width <= 0 {
		cfg.Width = time.Hour
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.TimePredicate == "" {
		cfg.TimePredicate = ontology.PropAcquisitionDateTime
	}
	if cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = 256
	}
	s := &Store{
		cfg:         cfg,
		width:       int64(cfg.Width / time.Second),
		epoch:       cfg.Epoch.Unix(),
		cache:       stsparql.NewCache(),
		slicePreds:  make(map[string]bool),
		staticPreds: make(map[string]bool),
		sliceTypes:  make(map[string]bool),
		staticTypes: make(map[string]bool),
		sliceMin:    make([]time.Time, cfg.Slices),
		sliceMax:    make([]time.Time, cfg.Slices),
	}
	if s.width < 1 {
		s.width = 1
	}
	s.static = strabon.NewWithCache(s.cache)
	s.ns = s.static.Namespaces()
	for i := 0; i < cfg.Slices; i++ {
		s.slices = append(s.slices, strabon.NewWithCache(s.cache))
	}
	s.resetPlanCaches(cfg.PlanCacheSize)
	return s
}

func (s *Store) resetPlanCaches(n int) {
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if n <= 0 {
		s.caches = make([]*stsparql.PlanCache, len(s.slices))
		s.unionPC = nil
		return
	}
	s.caches = make([]*stsparql.PlanCache, len(s.slices))
	for i := range s.caches {
		s.caches[i] = stsparql.NewPlanCache(n)
	}
	s.unionPC = stsparql.NewPlanCache(n)
}

// SetPlanCacheSize replaces every per-shard plan cache; n <= 0 disables
// plan caching. Counters restart.
func (s *Store) SetPlanCacheSize(n int) { s.resetPlanCaches(n) }

// PlanStats sums the per-shard plan cache counters.
func (s *Store) PlanStats() stsparql.PlanCacheStats {
	s.planMu.RLock()
	defer s.planMu.RUnlock()
	var out stsparql.PlanCacheStats
	add := func(pc *stsparql.PlanCache) {
		if pc == nil {
			return
		}
		st := pc.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
		out.Entries += st.Entries
	}
	for _, pc := range s.caches {
		add(pc)
	}
	add(s.unionPC)
	return out
}

func (s *Store) sliceCache(i int) *stsparql.PlanCache {
	s.planMu.RLock()
	defer s.planMu.RUnlock()
	return s.caches[i]
}

func (s *Store) unionCache() *stsparql.PlanCache {
	s.planMu.RLock()
	defer s.planMu.RUnlock()
	return s.unionPC
}

// Namespaces exposes the shared prefix table.
func (s *Store) Namespaces() *rdf.Namespaces { return s.ns }

// Len reports the total number of triples across every shard.
func (s *Store) Len() int {
	n := s.static.Len()
	for _, sl := range s.slices {
		n += sl.Len()
	}
	return n
}

// Slices reports the configured slice count.
func (s *Store) Slices() int { return len(s.slices) }

// Stats sums the member stores' endpoint statistics plus the sharded
// store's own query/update counters (member Queries/Updates stay zero:
// the sharded store evaluates through composite views, not the member
// endpoints).
func (s *Store) Stats() strabon.Stats {
	var out strabon.Stats
	add := func(st strabon.Stats) {
		out.Queries += st.Queries
		out.Updates += st.Updates
		out.TriplesLoaded += st.TriplesLoaded
		out.IndexHits += st.IndexHits
	}
	add(s.static.Stats())
	for _, sl := range s.slices {
		add(sl.Stats())
	}
	s.statsMu.Lock()
	out.Queries += s.queries
	out.Updates += s.updates
	s.statsMu.Unlock()
	return out
}

// ShardStats reports per-shard cardinality, generation and observed
// temporal range for /stats and the /metrics per-shard gauges.
func (s *Store) ShardStats() []strabon.ShardStat {
	se, sb := s.static.DictStats()
	out := []strabon.ShardStat{{
		Name:        "static",
		Triples:     s.static.Len(),
		Gen:         s.static.Generation(),
		DictEntries: se,
		DictBytes:   sb,
	}}
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	for i, sl := range s.slices {
		de, db := sl.DictStats()
		st := strabon.ShardStat{
			Name:        fmt.Sprintf("s%d", i),
			Triples:     sl.Len(),
			Gen:         sl.Generation(),
			DictEntries: de,
			DictBytes:   db,
		}
		if !s.sliceMin[i].IsZero() {
			st.Range = s.sliceMin[i].UTC().Format("2006-01-02T15:04:05") +
				"/" + s.sliceMax[i].UTC().Format("2006-01-02T15:04:05")
			st.MinUnix = s.sliceMin[i].Unix()
			st.MaxUnix = s.sliceMax[i].Unix()
		}
		out = append(out, st)
	}
	return out
}

// DictStats sums the member dictionaries' sizes (strabon.DictStatser).
// Each shard interns terms independently, so the entry total is an
// upper bound on the number of distinct terms across the store.
func (s *Store) DictStats() (entries, bytes int) {
	e, b := s.static.DictStats()
	entries, bytes = e, b
	for _, sl := range s.slices {
		e, b = sl.DictStats()
		entries += e
		bytes += b
	}
	return entries, bytes
}

// --- routing ---

// bucket maps a timestamp to its time bucket index.
func (s *Store) bucket(t time.Time) int64 {
	d := t.Unix() - s.epoch
	b := d / s.width
	if d%s.width < 0 {
		b--
	}
	return b
}

// sliceFor maps a timestamp to its owning slice (buckets round-robin
// over the slices).
func (s *Store) sliceFor(t time.Time) int {
	n := int64(len(s.slices))
	return int(((s.bucket(t) % n) + n) % n)
}

// groupTime finds the routing timestamp of a triple group: the object of
// its first acquisition-time triple. Routing is group-atomic — every
// triple of one acquisition's product lands in the same slice — which is
// what keeps subject-connected data co-located (the assumption the
// fan-out analysis leans on).
func (s *Store) groupTime(group []rdf.Triple) (time.Time, bool) {
	for _, t := range group {
		if t.P.Value == s.cfg.TimePredicate {
			if at, ok := stsparql.ParseDateTime(t.O.Value); ok {
				return at, true
			}
		}
	}
	return time.Time{}, false
}

// track records routing knowledge for inserted groups: predicate and
// rdf:type-object membership per side, and the observed acquisition-
// time range per slice — every parseable time object in a slice-routed
// group extends that slice's range, scoped-update inserts (which carry
// no routing timestamp of their own) included. targets[i] is the slice
// index of groups[i], or -1 for static. Deletions never untrack — the
// sets are conservative supersets and the ranges conservative
// envelopes, which only costs fan-out/pruning opportunities, never
// correctness. Growth of the predicate or type sets advances knowGen,
// invalidating partial result-cache vectors whose fan-out verdict the
// new knowledge could flip.
func (s *Store) track(groups [][]rdf.Triple, targets []int) {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	grew := false
	for gi, group := range groups {
		preds, types := s.slicePreds, s.sliceTypes
		if targets[gi] < 0 {
			preds, types = s.staticPreds, s.staticTypes
		}
		for _, t := range group {
			if !preds[t.P.Value] {
				preds[t.P.Value] = true
				grew = true
			}
			if t.P.Value == rdf.RDFType && t.O.IsIRI() && !types[t.O.Value] {
				types[t.O.Value] = true
				grew = true
			}
			if i := targets[gi]; i >= 0 && t.P.Value == s.cfg.TimePredicate {
				if at, ok := stsparql.ParseDateTime(t.O.Value); ok {
					if s.sliceMin[i].IsZero() || at.Before(s.sliceMin[i]) {
						s.sliceMin[i] = at
					}
					if at.After(s.sliceMax[i]) {
						s.sliceMax[i] = at
					}
				}
			}
		}
	}
	if grew {
		s.knowGen.Add(1)
	}
}

// groupSplits reports whether inserting the group into target (slice
// index, or -1 for static) would place a subject's triples outside the
// store where that subject already lives. locked=true when the caller
// already holds every member's lock; otherwise members are briefly
// read-locked one at a time (safe in any caller context: at most one
// lock is held at a time).
func (s *Store) groupSplits(group []rdf.Triple, target int, locked bool) bool {
	seen := make(map[string]bool)
	var subjects []rdf.Term
	for _, t := range group {
		if k := t.S.String(); !seen[k] {
			seen[k] = true
			subjects = append(subjects, t.S)
		}
	}
	var zero rdf.Term
	targetStore := s.static
	if target >= 0 {
		targetStore = s.slices[target]
	}
	for _, m := range s.members() {
		if m == targetStore {
			continue
		}
		if !locked {
			m.RLock()
		}
		found := false
		for _, sub := range subjects {
			if m.CountPattern(sub, zero, zero) > 0 {
				found = true
				break
			}
		}
		if !locked {
			m.RUnlock()
		}
		if found {
			return true
		}
	}
	return false
}

// noteTimeConflict latches the split flag when one group carries
// acquisition-time values in different routing buckets: the whole
// group lands in at's slice, so window pruning for the other value
// would look in the wrong slice.
func (s *Store) noteTimeConflict(group []rdf.Triple, at time.Time) {
	if s.split.Load() {
		return
	}
	want := s.bucket(at)
	for _, t := range group {
		if t.P.Value != s.cfg.TimePredicate {
			continue
		}
		if other, ok := stsparql.ParseDateTime(t.O.Value); !ok || s.bucket(other) != want {
			s.split.Store(true)
			return
		}
	}
}

// noteSplits latches the split flag if any group lands away from its
// subjects' existing home.
func (s *Store) noteSplits(groups [][]rdf.Triple, targets []int, locked bool) {
	if s.split.Load() {
		return
	}
	for gi, g := range groups {
		if s.groupSplits(g, targets[gi], locked) {
			s.split.Store(true)
			return
		}
	}
}

// findOwner locates the slice already holding a subject's triples
// (locked=true when the caller already holds every member's lock).
// Returns -1 when no slice knows the subject.
func (s *Store) findOwner(sub rdf.Term, locked bool) int {
	var zero rdf.Term
	for i, sl := range s.slices {
		if !locked {
			sl.RLock()
		}
		n := sl.CountPattern(sub, zero, zero)
		if !locked {
			sl.RUnlock()
		}
		if n > 0 {
			return i
		}
	}
	return -1
}

// --- write paths ---

// InsertAll bulk-inserts triple groups, routing each group by its
// acquisition timestamp (groups without one go to the static store) and
// batching one member InsertAll per target store. The write lock taken
// is the target slice's own — inserts into the live slice leave every
// other shard readable.
func (s *Store) InsertAll(groups ...[]rdf.Triple) []int {
	return s.insertRouted(groups, false)
}

func (s *Store) insertRouted(groups [][]rdf.Triple, probeOwner bool) []int {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	targets := make([]int, len(groups))
	for gi, g := range groups {
		targets[gi] = -1
		if at, ok := s.groupTime(g); ok {
			targets[gi] = s.sliceFor(at)
			s.noteTimeConflict(g, at)
		} else if probeOwner && len(g) > 0 {
			targets[gi] = s.findOwner(g[0].S, false)
		}
	}
	s.noteSplits(groups, targets, false)
	s.track(groups, targets)

	counts := make([]int, len(groups))
	apply := func(target int, st *strabon.Store) {
		var idxs []int
		for gi, tg := range targets {
			if tg == target {
				idxs = append(idxs, gi)
			}
		}
		if len(idxs) == 0 {
			return
		}
		batch := make([][]rdf.Triple, len(idxs))
		for i, gi := range idxs {
			batch[i] = groups[gi]
		}
		res := st.InsertAll(batch...)
		for i, gi := range idxs {
			counts[gi] = res[i]
		}
	}
	apply(-1, s.static)
	for i, sl := range s.slices {
		apply(i, sl)
	}
	return counts
}

// groupBySubject splits triples into per-subject groups, preserving
// first-seen subject order — the grouping unit of routed loads and
// routed update-plan application.
func groupBySubject(triples []rdf.Triple) [][]rdf.Triple {
	var order []string
	bySubj := make(map[string][]rdf.Triple)
	for _, t := range triples {
		k := t.S.String()
		if _, ok := bySubj[k]; !ok {
			order = append(order, k)
		}
		bySubj[k] = append(bySubj[k], t)
	}
	groups := make([][]rdf.Triple, len(order))
	for i, k := range order {
		groups[i] = bySubj[k]
	}
	return groups
}

// LoadTriples bulk-inserts a mixed triple set: triples are grouped by
// subject and each subject group routes like an InsertAll group, with a
// subject-ownership probe for groups carrying no timestamp (so later
// additions to an already-stored acquisition follow it to its slice).
func (s *Store) LoadTriples(triples []rdf.Triple) int {
	total := 0
	for _, n := range s.insertRouted(groupBySubject(triples), true) {
		total += n
	}
	return total
}

// LoadTurtle parses and loads a Turtle document.
func (s *Store) LoadTurtle(src string) (int, error) {
	triples, err := rdf.ParseTurtle(src, s.ns)
	if err != nil {
		return 0, err
	}
	return s.LoadTriples(triples), nil
}

func (s *Store) countUpdate() {
	s.statsMu.Lock()
	s.updates++
	s.statsMu.Unlock()
}

func (s *Store) countQuery() {
	s.statsMu.Lock()
	s.queries++
	s.statsMu.Unlock()
}

// parseUpdate parses an update request.
func (s *Store) parseUpdate(src string) (*stsparql.Query, error) {
	q, err := stsparql.Parse(src, s.ns)
	if err != nil {
		return nil, err
	}
	if q.Update == nil {
		return nil, fmt.Errorf("shard: Update wants DELETE/INSERT")
	}
	return q, nil
}

// Update executes a DELETE/INSERT request atomically across shards:
// match and application both run under every member's write lock (taken
// in fixed order), with deletes applied wherever the triple lives and
// inserts routed like loads.
func (s *Store) Update(src string) (stsparql.UpdateStats, error) {
	q, err := s.parseUpdate(src)
	if err != nil {
		return stsparql.UpdateStats{}, err
	}
	s.countUpdate()
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	unlock := s.lockAllWrite()
	defer unlock()
	ev := stsparql.NewEvaluatorWithCache(s.viewAll(), s.cache)
	plan, err := ev.PlanUpdate(q.Update)
	if err != nil {
		return stsparql.UpdateStats{}, err
	}
	return s.applyRouted(plan), nil
}

// applyRouted applies a computed update plan with every member write
// lock held: deletes try each store (the partition means exactly one can
// hold the triple), inserts group by subject and route by timestamp,
// then owning slice, then static. Routing decisions (targets, the
// split latch) and the track() registration all happen BEFORE the
// first member-store mutation: generation bumps are observed lock-free
// by the result cache's validators, so routing knowledge must already
// cover the new data when the first bump lands (genorder invariant,
// enforced by reprolint).
func (s *Store) applyRouted(plan *stsparql.UpdatePlan) stsparql.UpdateStats {
	stats := stsparql.UpdateStats{Matched: plan.Matched}

	groups := groupBySubject(plan.Inserts)
	targets := make([]int, len(groups))
	times := make([]time.Time, len(groups))
	for i := range groups {
		targets[i] = -1
		if at, ok := s.groupTime(groups[i]); ok {
			targets[i] = s.sliceFor(at)
			times[i] = at
		} else if idx := s.findOwner(groups[i][0].S, true); idx >= 0 {
			targets[i] = idx
		}
		if targets[i] >= 0 && !times[i].IsZero() {
			s.noteTimeConflict(groups[i], times[i])
		}
		if !s.split.Load() && s.groupSplits(groups[i], targets[i], true) {
			s.split.Store(true)
		}
	}
	s.track(groups, targets)

	for _, t := range plan.Deletes {
		removed := false
		for _, sl := range s.slices {
			if sl.Remove(t) {
				removed = true
				break
			}
		}
		if !removed {
			removed = s.static.Remove(t)
		}
		if removed {
			stats.Deleted++
		}
	}

	for i := range groups {
		st := s.static
		if targets[i] >= 0 {
			st = s.slices[targets[i]]
		}
		for _, t := range groups[i] {
			if st.Add(t) {
				stats.Inserted++
			}
		}
	}
	return stats
}

// UpdateScoped executes a DELETE/INSERT with relaxed atomicity, like
// strabon.Store.UpdateScoped. When the WHERE clause is provably
// shard-decomposable (the refinement updates are: every pattern anchors
// on one acquisition-scoped subject), it is planned and applied
// shard-by-shard — the WHERE phase under that slice's read lock, the
// application under its write lock — so scoped updates for different
// acquisition ranges run concurrently and never block other shards.
// Otherwise the WHERE phase runs once over the union view under every
// read lock and applies under every write lock.
func (s *Store) UpdateScoped(src string) (stsparql.UpdateStats, error) {
	q, err := s.parseUpdate(src)
	if err != nil {
		return stsparql.UpdateStats{}, err
	}
	s.countUpdate()
	dec := s.analyzeGroup(q.Update.Where)
	if !dec.fanout {
		return s.updateScopedGlobal(q)
	}

	var total stsparql.UpdateStats
	for _, idx := range dec.shards {
		sl := s.slices[idx]
		s.static.RLock()
		sl.RLock()
		// Re-validate the routing decision under the read locks: a
		// concurrent write may have latched the split flag or grown
		// routing knowledge since the unlocked analysis. Knowledge
		// only moves toward the union fallback, so on mismatch the
		// whole update re-plans globally (scoped refinement updates
		// are idempotent per row, so re-touching already-processed
		// shards is harmless).
		if !s.recheckFanout(q.Update.Where, dec) {
			sl.RUnlock()
			s.static.RUnlock()
			st, err := s.updateScopedGlobal(q)
			st.Matched += total.Matched
			st.Deleted += total.Deleted
			st.Inserted += total.Inserted
			return st, err
		}
		ev := stsparql.NewEvaluatorWithCache(s.view(idx), s.cache)
		plan, err := ev.PlanUpdate(q.Update)
		sl.RUnlock()
		s.static.RUnlock()
		if err != nil {
			return total, err
		}
		total.Matched += plan.Matched

		// Shard-local application: the plan's rows anchor on this
		// slice's subjects, so inserts land here. A delete the slice
		// does not hold — a template can name a static or other-slice
		// triple through an object variable — is retried against every
		// other member store, each under its own lock.
		s.writeMu.Lock()
		if len(plan.Inserts) > 0 {
			// BEFORE the inserts become visible: register routing
			// knowledge (e.g. noa:isInMunicipality on the first
			// Municipalities run) and latch the co-location flag if a
			// template writes onto a subject living outside this slice
			// — no concurrent analysis may see the data under a
			// pre-write classification.
			s.track([][]rdf.Triple{plan.Inserts}, []int{idx})
			groups := groupBySubject(plan.Inserts)
			targets := make([]int, len(groups))
			for i := range targets {
				targets[i] = idx
			}
			s.noteSplits(groups, targets, false)
			// A template may mint an acquisition timestamp belonging to
			// a different routing bucket than the slice it lands in —
			// window pruning would then look in the wrong slice. Latch
			// the union fallback, as noteTimeConflict does for loads.
			for _, t := range plan.Inserts {
				if t.P.Value != s.cfg.TimePredicate || s.split.Load() {
					continue
				}
				if at, ok := stsparql.ParseDateTime(t.O.Value); !ok || s.sliceFor(at) != idx {
					s.split.Store(true)
				}
			}
		}
		var leftovers []rdf.Triple
		sl.Lock()
		for _, t := range plan.Deletes {
			if sl.Remove(t) {
				total.Deleted++
			} else {
				leftovers = append(leftovers, t)
			}
		}
		for _, t := range plan.Inserts {
			if sl.Add(t) {
				total.Inserted++
			}
		}
		sl.Unlock()
		for _, m := range s.members() {
			if len(leftovers) == 0 {
				break
			}
			if m == sl {
				continue
			}
			remaining := leftovers[:0]
			m.Lock()
			for _, t := range leftovers {
				if m.Remove(t) {
					total.Deleted++
				} else {
					remaining = append(remaining, t)
				}
			}
			m.Unlock()
			leftovers = remaining
		}
		s.writeMu.Unlock()
	}
	return total, nil
}

// updateScopedGlobal is UpdateScoped's union-view path: the WHERE
// phase plans once over every member under read locks, application
// runs under every write lock with routed inserts.
func (s *Store) updateScopedGlobal(q *stsparql.Query) (stsparql.UpdateStats, error) {
	runlock := s.lockAllRead()
	ev := stsparql.NewEvaluatorWithCache(s.viewAll(), s.cache)
	plan, err := ev.PlanUpdate(q.Update)
	runlock()
	if err != nil {
		return stsparql.UpdateStats{}, err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	unlock := s.lockAllWrite()
	defer unlock()
	return s.applyRouted(plan), nil
}

// --- lock helpers ---

// lockAllRead read-locks every member store in fixed order (static,
// then slices ascending) and returns the matching unlock.
func (s *Store) lockAllRead() func() {
	s.static.RLock()
	for _, sl := range s.slices {
		sl.RLock()
	}
	return func() {
		for i := len(s.slices) - 1; i >= 0; i-- {
			s.slices[i].RUnlock()
		}
		s.static.RUnlock()
	}
}

// lockRead read-locks the static store plus the given slices (ascending
// indices) and returns the matching unlock.
func (s *Store) lockRead(idxs []int) func() {
	s.static.RLock()
	for _, i := range idxs {
		s.slices[i].RLock()
	}
	return func() {
		for j := len(idxs) - 1; j >= 0; j-- {
			s.slices[idxs[j]].RUnlock()
		}
		s.static.RUnlock()
	}
}

// lockAllWrite write-locks every member store in fixed order.
func (s *Store) lockAllWrite() func() {
	s.static.Lock()
	for _, sl := range s.slices {
		sl.Lock()
	}
	return func() {
		for i := len(s.slices) - 1; i >= 0; i-- {
			s.slices[i].Unlock()
		}
		s.static.Unlock()
	}
}

// genFor composes the plan-invalidation generation of one slice view.
// Generations only grow, so the sum moves whenever any member mutates.
// Caller must hold the member locks.
func (s *Store) genFor(idx int) uint64 {
	return s.static.Generation() + s.slices[idx].Generation()
}

// genAll composes the union view's generation. Caller must hold every
// member lock.
func (s *Store) genAll() uint64 {
	g := s.static.Generation()
	for _, sl := range s.slices {
		g += sl.Generation()
	}
	return g
}

// --- result-cache generation vectors ---
//
// A cached result stays valid while every member store it could have
// read is unchanged. Full (union-view) vectors list the static store
// and every slice. Partial vectors list only the fan-out's candidate
// slices — the window-derived keyShards set, which is pure bucket
// arithmetic over the immutable width/epoch and therefore stable
// across time for the same query text — plus the static store, and are
// additionally pinned to knowGen and the unsplit state: growth of
// routing knowledge or a co-location violation can widen the set of
// slices a re-evaluation would read, which the listed generations
// alone cannot witness.

// fullVector captures the union view's per-member generations. Caller
// must hold every member's read lock.
func (s *Store) fullVector() resultcache.GenVector {
	gens := make([]resultcache.SliceGen, 0, len(s.slices)+1)
	gens = append(gens, resultcache.SliceGen{Slice: -1, Gen: s.static.Generation()})
	for i, sl := range s.slices {
		gens = append(gens, resultcache.SliceGen{Slice: i, Gen: sl.Generation()})
	}
	return resultcache.GenVector{Gens: gens, Know: s.knowGen.Load()}
}

// fanVector captures the generations of the static store plus the
// fan-out's candidate slices. Capture must precede recheckFanout —
// every write path tracks its routing knowledge BEFORE bumping the
// member generation, so a write racing the analysis either shows up in
// the recheck (union fallback) or post-dates the captured vector (the
// cache entry fails validation). That ordering is what makes the
// lock-free empty-prune path sound; the locked fan-out paths capture
// under their read locks anyway.
func (s *Store) fanVector(keyShards []int) resultcache.GenVector {
	gens := make([]resultcache.SliceGen, 0, len(keyShards)+1)
	gens = append(gens, resultcache.SliceGen{Slice: -1, Gen: s.static.Generation()})
	for _, i := range keyShards {
		gens = append(gens, resultcache.SliceGen{Slice: i, Gen: s.slices[i].Generation()})
	}
	return resultcache.GenVector{Gens: gens, Know: s.knowGen.Load(), Partial: true}
}

// GensValid implements strabon.GenValidator: a cached result is valid
// iff every member generation its vector lists is unchanged — and, for
// partial vectors, the routing knowledge that scoped the fan-out to
// those members is unchanged too. Lock-free: generations are atomics,
// so validation runs on every cache Get without touching any RWMutex.
func (s *Store) GensValid(v resultcache.GenVector) bool {
	if v.Partial {
		if s.split.Load() || v.Know != s.knowGen.Load() {
			return false
		}
	} else if len(v.Gens) != len(s.slices)+1 {
		return false
	}
	for _, g := range v.Gens {
		switch {
		case g.Slice == -1:
			if g.Gen != s.static.Generation() {
				return false
			}
		case g.Slice < 0 || g.Slice >= len(s.slices):
			return false
		default:
			if g.Gen != s.slices[g.Slice].Generation() {
				return false
			}
		}
	}
	return true
}

// TimedQuery evaluates a query and reports its wall-clock duration
// through the shared wrapper (see strabon.TimedQuery).
func (s *Store) TimedQuery(src string) (*stsparql.Result, time.Duration, error) {
	return strabon.TimedQuery(s, src)
}
