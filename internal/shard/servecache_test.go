package shard

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/products"
	"repro/internal/resultcache"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

// The serving-tier suite over the sharded store: cached replays must be
// byte-identical to fresh evaluations across the whole equivalence
// corpus, and a live writer must invalidate exactly the entries whose
// slices it touches.

func serve(t testing.TB, ep *strabon.Endpoint, target string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	ep.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
	return w
}

// TestServedCacheByteIdentity requests every corpus query twice per
// format over an endpoint with the result cache on: the second response
// (the replay) must match the first byte for byte — body, headers and
// trailers — with only X-Elapsed-Us allowed to differ. Cacheable plans
// must actually hit; the SAMPLE plan must never be stored.
func TestServedCacheByteIdentity(t *testing.T) {
	sh := newSharded(4)
	loadFixture(sh)

	type q struct{ name, query string }
	var queries []q
	for _, tc := range corpus {
		queries = append(queries, q{tc.name, tc.query})
	}
	for _, tc := range askCorpus {
		queries = append(queries, q{tc.name, tc.query})
	}
	queries = append(queries, q{"sample-uncacheable",
		`SELECT (SAMPLE(?c) AS ?s) WHERE { ?h noa:hasConfidence ?c . }`})

	for _, format := range []string{"json", "tsv"} {
		// A fresh endpoint (and cache) per format so each pair is one
		// miss followed by one replay of that miss.
		ep := strabon.NewEndpoint(sh)
		ep.Results = resultcache.New(256, 32<<20)
		for _, tc := range queries {
			parsed, err := stsparql.Parse(tc.query, sh.Namespaces())
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			cacheable := stsparql.Cacheable(parsed)

			target := "/sparql?format=" + format + "&query=" + url.QueryEscape(tc.query)
			before := ep.Results.Stats()
			w1 := serve(t, ep, target)
			w2 := serve(t, ep, target)
			if w1.Code != http.StatusOK || w2.Code != http.StatusOK {
				t.Fatalf("%s/%s: status %d / %d: %s", tc.name, format, w1.Code, w2.Code, w1.Body)
			}
			hits := ep.Results.Stats().Hits - before.Hits
			if !cacheable {
				// An uncacheable plan (SAMPLE) may legitimately answer
				// differently per evaluation — the only contract is
				// that it is never served from the cache.
				if hits != 0 {
					t.Fatalf("%s/%s: uncacheable plan hit the cache", tc.name, format)
				}
				continue
			}
			if hits != 1 {
				t.Fatalf("%s/%s: second request was not a cache hit (%d hits)", tc.name, format, hits)
			}
			if w1.Body.String() != w2.Body.String() {
				t.Fatalf("%s/%s: replay body differs:\n%s\n---\n%s", tc.name, format, w1.Body, w2.Body)
			}
			h1, h2 := w1.Header().Clone(), w2.Header().Clone()
			h1.Del("X-Elapsed-Us")
			h2.Del("X-Elapsed-Us")
			if !reflect.DeepEqual(h1, h2) {
				t.Fatalf("%s/%s: replay headers differ:\n%v\n---\n%v", tc.name, format, h1, h2)
			}
		}
	}
}

// insertAt routes one single-hotspot product through the write path.
// The shape reuses the fixture's predicates and types, so inserting
// into an already-populated slice bumps only that slice's generation —
// never the routing-knowledge generation that would invalidate every
// fan-out entry.
func insertAt(sh *Store, at time.Time, id string) {
	p := &products.Product{Sensor: "MSG1", Chain: "test", AcquiredAt: at}
	p.Hotspots = append(p.Hotspots, products.Hotspot{
		ID: id, Geometry: geom.NewSquare(3, 5, 0.5),
		Confidence: 1.0, AcquiredAt: at, Sensor: "MSG1", Chain: "test",
		Producer: "noa", Confirmation: true,
	})
	sh.InsertAll(p.Triples())
}

// TestShardResultCacheInvalidation pins the serving tier's core claim
// against a live writer: writes into one slice invalidate exactly the
// entries that read it. The fixture populates hours 10-13 (slices
// 2,3,0,1 on a 4-slice store); the writer appends inside bucket 13 —
// slice 1 — so the hour-10 window keeps hitting while the hour-13
// window re-evaluates after every write. Runs in the -race CI step with
// the writer and two query clients concurrent.
func TestShardResultCacheInvalidation(t *testing.T) {
	sh := newSharded(4)
	loadFixture(sh)
	ep := strabon.NewEndpoint(sh)
	ep.Results = resultcache.New(64, 8<<20)

	window := func(lo, hi string) string {
		return "/sparql?query=" + url.QueryEscape(fmt.Sprintf(`SELECT ?h ?g WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?g .
  FILTER( str(?at) >= "%s" )
  FILTER( str(?at) <= "%s" )
}`, lo, hi))
	}
	hot := window("2007-08-25T10:00:00", "2007-08-25T10:59:00")  // slice 2
	live := window("2007-08-25T13:00:00", "2007-08-25T13:59:00") // slice 1

	// Sequential phase: exact invalidation semantics.
	first := serve(t, ep, live)
	if first.Code != http.StatusOK {
		t.Fatalf("live miss: %d %s", first.Code, first.Body)
	}
	serve(t, ep, live)
	serve(t, ep, hot)
	serve(t, ep, hot)
	st0 := ep.Results.Stats()
	if st0.Hits != 2 || st0.Invalidations != 0 {
		t.Fatalf("warm-up stats: %+v", st0)
	}

	insertAt(sh, day.Add(13*time.Hour+50*time.Minute), "seq0")

	after := serve(t, ep, live)
	st1 := ep.Results.Stats()
	if st1.Invalidations != st0.Invalidations+1 {
		t.Fatalf("write into slice 1 did not invalidate the live entry: %+v", st1)
	}
	if first.Header().Get("X-Rows") == after.Header().Get("X-Rows") {
		t.Fatalf("re-evaluation missed the written row: %s rows before and after",
			after.Header().Get("X-Rows"))
	}
	if w := serve(t, ep, hot); w.Code != http.StatusOK {
		t.Fatalf("hot after write: %d", w.Code)
	}
	st2 := ep.Results.Stats()
	if st2.Hits != st1.Hits+1 || st2.Invalidations != st1.Invalidations {
		t.Fatalf("hot entry did not survive the slice-1 write: %+v", st2)
	}

	// Concurrent phase: writer + two clients race over the endpoint.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			insertAt(sh, day.Add(13*time.Hour+50*time.Minute+time.Duration(i%500)*time.Second), fmt.Sprintf("con%d", i))
			time.Sleep(200 * time.Microsecond)
		}
	}()
	hotHitsBefore := ep.Results.Stats().Hits
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				target := hot
				if i%2 == 1 {
					target = live
				}
				if w := serve(t, ep, target); w.Code != http.StatusOK {
					t.Errorf("concurrent query: %d %s", w.Code, w.Body)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(done)
	wg.Wait()

	st3 := ep.Results.Stats()
	if st3.Hits <= hotHitsBefore {
		t.Fatalf("hot entries stopped hitting under the write stream: %+v", st3)
	}

	// The cache never serves a stale live window: a final read must see
	// every concurrent insert.
	want, err := sh.Query(`SELECT (COUNT(?h) AS ?n) WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) >= "2007-08-25T13:00:00" )
  FILTER( str(?at) <= "2007-08-25T13:59:00" )
}`)
	if err != nil {
		t.Fatal(err)
	}
	final := serve(t, ep, live)
	if got := final.Header().Get("X-Rows"); got != want.Rows[0]["n"].Value {
		t.Fatalf("served live window has %s rows, store has %s", got, want.Rows[0]["n"].Value)
	}
}

// TestShardObservedRangePruning checks satellite fan-out pruning by
// observed slice contents: with data only in hours 10-11 (slices 2,3),
// a window spanning hours 10-13 keeps only the populated slices, and a
// window over empty slices prunes to nothing — both visibly in Explain
// and without changing results.
func TestShardObservedRangePruning(t *testing.T) {
	single := strabon.New()
	sh := newSharded(4)
	for _, st := range []strabon.API{single, sh} {
		st.LoadTriples(staticTriples())
		for _, p := range fixtureProducts()[:8] { // 10:00-11:45 only
			st.InsertAll(p.Triples())
		}
	}

	wide := `SELECT ?h ?g WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?g .
  FILTER( str(?at) >= "2007-08-25T10:00:00" )
  FILTER( str(?at) <= "2007-08-25T13:59:00" )
}`
	out, err := sh.Explain(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard fan-out: 2/4 slices") ||
		!strings.Contains(out, "observed time ranges prune") {
		t.Fatalf("wide window not pruned by observed ranges:\n%s", out)
	}
	want, err := single.Query(wide)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Query(wide)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "observed-pruned-window", want, got, false)

	empty := `SELECT (COUNT(*) AS ?n) WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) >= "2007-08-25T12:00:00" )
  FILTER( str(?at) <= "2007-08-25T12:59:00" )
}`
	out, err = sh.Explain(empty)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard fan-out: 0/4 slices") {
		t.Fatalf("window over empty slices not pruned to zero:\n%s", out)
	}
	res, err := sh.Query(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["n"].Value != "0" {
		t.Fatalf("empty-window count: %+v", res.Rows)
	}
}
