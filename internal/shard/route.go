package shard

import (
	"sort"
	"time"

	"repro/internal/rdf"
	"repro/internal/stsparql"
)

// This file is the fan-out analysis: it decides, per query, whether
// per-shard evaluation plus cursor merging is provably equivalent to a
// single-store evaluation, and which slices a time-constrained query
// can prune to.
//
// Fan-out over the slice views (static + one slice each) is exact iff
// every solution row is produced by exactly one view. Two failure modes
// must be excluded: a row derivable from static data alone would be
// produced by EVERY view (duplicates), and a row needing partitioned
// triples from two different slices would be produced by NO view
// (missed). The analysis therefore requires:
//
//  1. at least one conjunctive (non-OPTIONAL, non-UNION-branch) pattern
//     that can only match slice-routed triples — so every solution
//     touches partitioned data;
//  2. no pattern of unknown provenance (a predicate stored on both
//     sides with an untyped subject, or a variable predicate on an
//     untyped subject) — so nothing silently spans the partition;
//  3. all slice-classed patterns sharing one SUBJECT variable — the
//     "anchor" entity of every solution. Routing co-locates one
//     subject's triples (a whole acquisition group lands in one
//     slice), so same-subject patterns provably read one slice;
//     joining two slice subjects through a shared object value
//     (?h1 sensor ?s . ?h2 sensor ?s) proves nothing about
//     co-location and must fall back to the union view;
//  4. any grouped sub-select over slice data keyed (at least partly)
//     by the anchor variable, so no group spans slices.
//
// Pattern provenance comes from routing knowledge tracked at insert
// time: which predicates — and which rdf:type objects — have gone to
// slices vs the static store. A pattern whose predicate lives on both
// sides (strdf:hasGeometry, rdf:type) is resolved through its subject's
// rdf:type constraint when the query states one (`?m a gag:Municipality`
// pins ?m's triples static). Queries failing any test evaluate exactly
// once over the union view instead — correct, just not fanned out.

type cls int

const (
	clStatic  cls = iota // only matches static-store triples
	clSlice              // only matches slice-routed triples
	clUnknown            // could match either side
)

// decision is the routing verdict for one WHERE clause.
type decision struct {
	fanout bool
	shards []int // evaluated slice indices, ascending (fanout only)
	// keyShards is the window-derived candidate set before observed-
	// range refinement: pure bucket arithmetic over the immutable
	// width/epoch, so it is stable across time for one query text —
	// the set partial result-cache vectors are built from. shards ⊆
	// keyShards always.
	keyShards []int
	pruned    bool // len(shards) < len(slices)
}

type patCtx struct {
	pat      stsparql.TriplePattern
	required bool
	class    cls
}

type subselInfo struct {
	sel      *stsparql.SelectQuery
	from, to int // index range of its patterns in walker.pats
	scope    *scopeInfo
}

// scopeInfo is one variable scope of the WHERE clause — the outer group
// or one sub-select body. Sub-selects export only their projected
// variables, so filters and acquisition-time patterns must be matched
// within scopes: an inner variable that merely shares an outer time
// variable's name must not contribute to window pruning.
type scopeInfo struct {
	filters  []stsparql.Expr // conjunctive filters of this scope
	timeVars map[string]bool // time-pattern object vars bound in this scope
	children []subselInfo
}

func newScope() *scopeInfo { return &scopeInfo{timeVars: make(map[string]bool)} }

type walker struct {
	timePred string
	pats     []*patCtx
	root     *scopeInfo
	bad      bool
}

func (w *walker) walk(gp *stsparql.GroupPattern, sc *scopeInfo, required bool) {
	if gp == nil {
		return
	}
	for _, el := range gp.Elements {
		switch v := el.(type) {
		case *stsparql.BGPElement:
			for _, p := range v.Patterns {
				w.pats = append(w.pats, &patCtx{pat: p, required: required})
				if !p.P.IsVar() && p.P.Term.Value == w.timePred && p.O.IsVar() {
					sc.timeVars[p.O.Var] = true
				}
			}
		case *stsparql.FilterElement:
			if required {
				sc.filters = append(sc.filters, v.Cond)
			}
		case *stsparql.OptionalElement:
			w.walk(v.Pattern, sc, false)
		case *stsparql.UnionElement:
			for _, br := range v.Branches {
				w.walk(br, sc, false)
			}
		case *stsparql.GroupPattern:
			w.walk(v, sc, required)
		case *stsparql.SubSelectElement:
			// A per-shard LIMIT/OFFSET inside a sub-select would slice
			// each shard's solutions instead of the global set.
			if v.Select.Limit >= 0 || v.Select.Offset > 0 {
				w.bad = true
				return
			}
			child := newScope()
			from := len(w.pats)
			w.walk(v.Select.Where, child, required)
			info := subselInfo{sel: v.Select, from: from, to: len(w.pats), scope: child}
			sc.children = append(sc.children, info)
		default:
			w.bad = true
			return
		}
	}
}

// subsels flattens the scope tree's sub-selects.
func collectSubsels(sc *scopeInfo, out []subselInfo) []subselInfo {
	for _, ch := range sc.children {
		out = append(out, ch)
		out = collectSubsels(ch.scope, out)
	}
	return out
}

// scopeWindows extracts the per-variable windows of one scope and its
// descendants. A filter only sees the time variables bound in its own
// scope, plus those a child sub-select actually EXPORTS (projects) —
// an unprojected inner time variable is invisible outside, and an
// inner filter on a name that only an outer pattern binds constrains a
// fresh local variable, not the outer one.
func scopeWindows(sc *scopeInfo) (wins []windowBounds, visible map[string]bool) {
	visible = make(map[string]bool, len(sc.timeVars))
	for v := range sc.timeVars {
		visible[v] = true
	}
	for _, ch := range sc.children {
		chWins, chVis := scopeWindows(ch.scope)
		wins = append(wins, chWins...)
		for v := range chVis {
			if subselProjects(ch.sel, v) {
				visible[v] = true
			}
		}
	}
	for _, w := range extractWindows(sc.filters, visible) {
		wins = append(wins, *w)
	}
	return wins, visible
}

// analyzeGroup routes one WHERE clause. A nil group (INSERT DATA forms)
// routes as not-fanout; the caller applies it through the routed write
// path anyway.
func (s *Store) analyzeGroup(gp *stsparql.GroupPattern) decision {
	union := decision{fanout: false}
	if gp == nil {
		return union
	}
	// A write has split some subject across stores: co-location no
	// longer holds, so every query takes the exact union view.
	if s.split.Load() {
		return union
	}
	w := &walker{timePred: s.cfg.TimePredicate, root: newScope()}
	w.walk(gp, w.root, true)
	if w.bad || len(w.pats) == 0 {
		return union
	}

	s.routeMu.RLock()
	typed := s.typeClasses(w.pats)
	requiredSlice := false
	for _, pc := range w.pats {
		pc.class = s.classify(pc.pat, typed)
		if pc.class == clUnknown {
			s.routeMu.RUnlock()
			return union
		}
		if pc.class == clSlice && pc.required {
			requiredSlice = true
		}
	}
	s.routeMu.RUnlock()
	if !requiredSlice {
		return union
	}

	// Anchor: every slice-classed pattern must have the SAME subject
	// variable. Subject co-location is the only guarantee routing
	// provides; equal object values do not place two subjects in one
	// slice, and a constant subject proves nothing at analysis time.
	anchor := ""
	for _, pc := range w.pats {
		if pc.class != clSlice {
			continue
		}
		if !pc.pat.S.IsVar() {
			return union
		}
		if anchor == "" {
			anchor = pc.pat.S.Var
		} else if pc.pat.S.Var != anchor {
			return union
		}
	}

	// Sub-selects over slice data: the flattened analysis identifies
	// the inner and outer anchor by NAME, but at runtime a sub-select
	// only exports the variables it projects — an unprojected inner
	// anchor is a fresh variable whose solutions cross-join with the
	// outer rows, pairing entities across slices. So a slice-bearing
	// sub-select must project the anchor (making the name identity
	// real), and if grouped, must also group by it (so no group spans
	// slices).
	for _, ss := range collectSubsels(w.root, nil) {
		hasSlice := false
		for _, pc := range w.pats[ss.from:ss.to] {
			if pc.class == clSlice {
				hasSlice = true
				break
			}
		}
		if !hasSlice {
			continue
		}
		if !subselProjects(ss.sel, anchor) {
			return union
		}
		if !stsparql.IsGrouped(ss.sel) {
			continue
		}
		keyed := false
		for _, g := range ss.sel.GroupBy {
			if ve, ok := g.(*stsparql.VarExpr); ok && ve.Name == anchor {
				keyed = true
				break
			}
		}
		if !keyed {
			return union
		}
	}

	// Time-window pruning: constraints on variables bound by the
	// anchor's acquisition-time triples narrow the slice set. Windows
	// are extracted scope by scope (filters only see their own scope's
	// time variables plus projected child ones) and every window's
	// shard set is intersected — each solution needs the anchor's
	// (single, group-routing) time value inside all of them.
	wins, _ := scopeWindows(w.root)
	keyShards := s.shardSetFor(wins)
	shards := s.refineObserved(keyShards, wins)
	return decision{
		fanout:    true,
		shards:    shards,
		keyShards: keyShards,
		pruned:    len(shards) < len(s.slices),
	}
}

// refineObserved drops candidate slices the observed data ranges prove
// irrelevant: a slice that never received a routed group (its range is
// unset) cannot satisfy the required slice-classed pattern, and a slice
// whose whole observed acquisition range lies outside some window
// cannot contribute a solution inside it. Sound because every routed
// insert extends its slice's range in track() BEFORE the data becomes
// visible, and ranges only grow — a concurrent write that would
// re-admit a dropped slice publishes the wider range first, so the
// under-lock recheckFanout re-analysis sees it, finds the locked slice
// set no longer covers the re-derived one, and falls back to the union
// view.
func (s *Store) refineObserved(cand []int, wins []windowBounds) []int {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	out := make([]int, 0, len(cand))
	for _, i := range cand {
		if s.sliceMin[i].IsZero() {
			continue // never received a routed group: nothing to read
		}
		drop := false
		for _, w := range wins {
			if (w.hasHi && s.sliceMin[i].After(w.hi)) ||
				(w.hasLo && s.sliceMax[i].Before(w.lo)) {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, i)
		}
	}
	return out
}

// typeClasses maps variables to a provenance class derived from their
// rdf:type constraints. Caller holds routeMu read lock.
func (s *Store) typeClasses(pats []*patCtx) map[string]cls {
	typed := make(map[string]cls)
	for _, pc := range pats {
		p := pc.pat
		if p.P.IsVar() || p.P.Term.Value != rdf.RDFType || !p.S.IsVar() || p.O.IsVar() || !p.O.Term.IsIRI() {
			continue
		}
		inSlice, inStatic := s.sliceTypes[p.O.Term.Value], s.staticTypes[p.O.Term.Value]
		var c cls
		switch {
		case inSlice && inStatic:
			continue // ambiguous type: no subject information
		case inSlice:
			c = clSlice
		default:
			// Static, or a type never inserted (matches nothing
			// anywhere, so either side's view agrees).
			c = clStatic
		}
		if prev, ok := typed[p.S.Var]; ok && prev != c {
			typed[p.S.Var] = clUnknown
			continue
		}
		typed[p.S.Var] = c
	}
	return typed
}

// classify determines which side of the partition one triple pattern
// can match. Caller holds routeMu read lock.
func (s *Store) classify(p stsparql.TriplePattern, typed map[string]cls) cls {
	bySubject := func() (cls, bool) {
		if !p.S.IsVar() {
			return 0, false
		}
		c, ok := typed[p.S.Var]
		if !ok || c == clUnknown {
			return 0, false
		}
		return c, true
	}
	resolve := func(inSlice, inStatic bool) cls {
		switch {
		case inSlice && inStatic:
			if c, ok := bySubject(); ok {
				return c
			}
			return clUnknown
		case inSlice:
			return clSlice
		default:
			return clStatic // static, or never inserted (matches nothing)
		}
	}
	if p.P.IsVar() {
		if c, ok := bySubject(); ok {
			return c
		}
		return clUnknown
	}
	pred := p.P.Term.Value
	// Note: the acquisition-time predicate is NOT special-cased to
	// clSlice — a group whose time literal fails to parse routes to the
	// static store, and the tracked predicate sets then correctly
	// classify time patterns as ambiguous (union fallback) instead of
	// fanning out over data that partly lives outside the slices.
	if pred == rdf.RDFType && !p.O.IsVar() && p.O.Term.IsIRI() {
		return resolve(s.sliceTypes[p.O.Term.Value], s.staticTypes[p.O.Term.Value])
	}
	return resolve(s.slicePreds[pred], s.staticPreds[pred])
}

// subselProjects reports whether the sub-select exports v as the plain
// variable (SELECT * exports everything; an expression aliased AS ?v
// binds the name to something else).
func subselProjects(sel *stsparql.SelectQuery, v string) bool {
	if sel.Star {
		return true
	}
	for _, item := range sel.Projection {
		if item.Expr == nil && item.Var == v {
			return true
		}
	}
	return false
}

// --- window extraction ---

type windowBounds struct {
	lo, hi       time.Time
	hasLo, hasHi bool
}

// extractWindows folds conjunctive filter constraints into one [lo, hi]
// window PER acquisition-time variable (constraints on different
// variables must not be conflated into one window — their shard sets
// intersect instead). Strict bounds relax to inclusive ones (pruning
// one slice too few is sound; one too many is not). The datasets
// compare str(?at) against ISO strings, whose lexicographic order is
// chronological — both the str() form and direct comparisons are
// recognised.
func extractWindows(filters []stsparql.Expr, timeVars map[string]bool) map[string]*windowBounds {
	wins := make(map[string]*windowBounds)
	for _, f := range filters {
		collectBounds(f, timeVars, wins)
	}
	return wins
}

func collectBounds(e stsparql.Expr, timeVars map[string]bool, wins map[string]*windowBounds) {
	b, ok := e.(*stsparql.BinaryExpr)
	if !ok {
		return
	}
	if b.Op == "&&" {
		collectBounds(b.L, timeVars, wins)
		collectBounds(b.R, timeVars, wins)
		return
	}
	op := b.Op
	name, lOK := timeVarOf(b.L, timeVars)
	t, tOK := timeConstOf(b.R)
	if !lOK || !tOK {
		// Mirror: constant OP var.
		var rOK bool
		name, rOK = timeVarOf(b.R, timeVars)
		if !rOK {
			return
		}
		t, tOK = timeConstOf(b.L)
		if !tOK {
			return
		}
		switch op {
		case ">=", ">":
			op = "<="
		case "<=", "<":
			op = ">="
		}
	}
	w := wins[name]
	if w == nil {
		w = &windowBounds{}
		wins[name] = w
	}
	switch op {
	case ">=", ">":
		if !w.hasLo || t.After(w.lo) {
			w.lo, w.hasLo = t, true
		}
	case "<=", "<":
		if !w.hasHi || t.Before(w.hi) {
			w.hi, w.hasHi = t, true
		}
	case "=":
		if !w.hasLo || t.After(w.lo) {
			w.lo, w.hasLo = t, true
		}
		if !w.hasHi || t.Before(w.hi) {
			w.hi, w.hasHi = t, true
		}
	}
}

// timeVarOf recognises ?t and str(?t) for a tracked time variable.
func timeVarOf(e stsparql.Expr, timeVars map[string]bool) (string, bool) {
	switch v := e.(type) {
	case *stsparql.VarExpr:
		if timeVars[v.Name] {
			return v.Name, true
		}
	case *stsparql.CallExpr:
		if v.Name == "str" && len(v.Args) == 1 {
			if ve, ok := v.Args[0].(*stsparql.VarExpr); ok && timeVars[ve.Name] {
				return ve.Name, true
			}
		}
	}
	return "", false
}

func timeConstOf(e stsparql.Expr) (time.Time, bool) {
	c, ok := e.(*stsparql.ConstExpr)
	if !ok {
		return time.Time{}, false
	}
	return stsparql.ParseDateTime(c.Term.Value)
}

// shardSetFor intersects the windows' slice sets: a solution's owning
// slice must satisfy every extracted window.
func (s *Store) shardSetFor(wins []windowBounds) []int {
	keep := make(map[int]bool, len(s.slices))
	for i := range s.slices {
		keep[i] = true
	}
	for _, w := range wins {
		in := make(map[int]bool)
		for _, idx := range s.shardsFor(w) {
			in[idx] = true
		}
		for idx := range keep {
			if !in[idx] {
				delete(keep, idx)
			}
		}
	}
	out := make([]int, 0, len(keep))
	for idx := range keep {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// shardsFor maps one window to the slice indices whose buckets
// intersect it. An unbounded side touches every slice (buckets are
// round-robin over the slices); an empty window touches none.
func (s *Store) shardsFor(w windowBounds) []int {
	all := make([]int, len(s.slices))
	for i := range all {
		all[i] = i
	}
	if !w.hasLo || !w.hasHi {
		return all
	}
	if w.hi.Before(w.lo) {
		return nil
	}
	b1, b2 := s.bucket(w.lo), s.bucket(w.hi)
	if b2-b1+1 >= int64(len(s.slices)) {
		return all
	}
	seen := make(map[int]bool)
	var out []int
	for b := b1; b <= b2; b++ {
		n := int64(len(s.slices))
		idx := int(((b % n) + n) % n)
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}
