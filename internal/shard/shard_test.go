package shard

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/products"
	"repro/internal/rdf"
	"repro/internal/strabon"
	"repro/internal/stsparql"
)

// The equivalence suite: a sharded store must answer every corpus query
// row-for-row identically to a single strabon.Store over the same data
// (up to ORDER-BY-mandated order), for 1, 2 and 4 slices — the
// acceptance bar of the sharding subsystem.

var day = time.Date(2007, 8, 25, 0, 0, 0, 0, time.UTC)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }

const (
	nsNOA   = "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#"
	nsGAG   = "http://teleios.di.uoa.gr/ontologies/gagOntology.owl#"
	nsCoast = "http://teleios.di.uoa.gr/ontologies/coastlineOntology.owl#"
	nsStRDF = "http://strdf.di.uoa.gr/ontology#"
)

// staticTriples builds the reference datasets: municipalities tiling the
// [0,20]x[0,10] region, and one coastline polygon.
func staticTriples() []rdf.Triple {
	var out []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		out = append(out, rdf.Triple{S: iri(s), P: iri(p), O: o})
	}
	for i := 0; i < 4; i++ {
		m := fmt.Sprintf("http://example.org/mun%d", i)
		x := float64(i * 5)
		add(m, rdf.RDFType, iri(nsGAG+"Municipality"))
		add(m, nsStRDF+"hasGeometry", rdf.NewGeometry(fmt.Sprintf(
			"POLYGON ((%g 0, %g 0, %g 10, %g 10, %g 0))", x, x+5, x+5, x, x)))
		add(m, nsGAG+"hasPopulation", rdf.NewInteger(int64(1000*(i+1))))
	}
	add("http://example.org/coast1", rdf.RDFType, iri(nsCoast+"Coastline"))
	add("http://example.org/coast1", nsStRDF+"hasGeometry",
		rdf.NewGeometry("POLYGON ((0 0, 20 0, 20 8, 0 8, 0 0))"))
	return out
}

// fixtureProducts builds one product per 15-minute acquisition from
// 10:00 to 13:45 — 16 acquisitions spanning four 1h buckets — with
// hotspots on a small set of recurring locations (so per-location
// groups span shards).
func fixtureProducts() []*products.Product {
	var out []*products.Product
	for i := 0; i < 16; i++ {
		at := day.Add(10*time.Hour + time.Duration(i)*15*time.Minute)
		p := &products.Product{Sensor: "MSG1", Chain: "test", AcquiredAt: at}
		for j := 0; j <= i%3; j++ {
			lon := float64((i + 4*j) % 5 * 4)
			conf := 0.5
			if (i+j)%2 == 0 {
				conf = 1.0
			}
			p.Hotspots = append(p.Hotspots, products.Hotspot{
				ID:           fmt.Sprintf("%d_%d", i, j),
				Geometry:     geom.NewSquare(lon+1, 5, 0.5),
				Confidence:   conf,
				AcquiredAt:   at,
				Sensor:       "MSG1",
				Chain:        "test",
				Producer:     "noa",
				Confirmation: conf >= 1.0,
			})
		}
		out = append(out, p)
	}
	return out
}

// loadFixture populates one store (single or sharded) identically.
func loadFixture(st strabon.API) {
	st.LoadTriples(staticTriples())
	for _, p := range fixtureProducts() {
		st.InsertAll(p.Triples())
	}
}

func newSharded(slices int) *Store {
	return New(Config{Slices: slices, Width: time.Hour, Epoch: day})
}

// corpus lists the equivalence queries. ordered marks queries whose
// exact row sequence is ORDER-BY-determined (compared positionally);
// everything else compares as a multiset.
var corpus = []struct {
	name    string
	query   string
	ordered bool
}{
	{"window-select", `
SELECT ?h ?g WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?g .
  FILTER( str(?at) >= "2007-08-25T10:00:00" )
  FILTER( str(?at) <= "2007-08-25T10:45:00" )
}`, false},
	{"spatial-join-municipality", `
SELECT ?h ?m WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?hg .
  ?m a gag:Municipality ; strdf:hasGeometry ?mg .
  FILTER( str(?at) = "2007-08-25T11:00:00" )
  FILTER( strdf:anyInteract(?hg, ?mg) )
}`, false},
	{"optional-confirmation", `
SELECT ?h ?cf WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  OPTIONAL { ?h noa:hasConfirmation ?cf }
  FILTER( str(?at) >= "2007-08-25T10:30:00" )
  FILTER( str(?at) <= "2007-08-25T11:30:00" )
}`, false},
	{"distinct-sensor", `
SELECT DISTINCT ?s WHERE { ?h a noa:Hotspot ; noa:isDerivedFromSensor ?s . }`, false},
	{"order-limit-offset", `
SELECT ?h ?at WHERE { ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at . }
ORDER BY DESC(str(?at)) ?h LIMIT 7 OFFSET 3`, true},
	{"order-all", `
SELECT ?h ?at WHERE { ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at . }
ORDER BY ASC(str(?at)) ?h`, true},
	{"aggregate-by-sensor", `
SELECT ?s (COUNT(?h) AS ?n) (AVG(?c) AS ?avgc) (MAX(str(?at)) AS ?last) WHERE {
  ?h a noa:Hotspot ; noa:isDerivedFromSensor ?s ;
     noa:hasConfidence ?c ; noa:hasAcquisitionDateTime ?at .
} GROUP BY ?s`, false},
	{"group-location-having", `
SELECT ?g (COUNT(?h) AS ?n) WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?g .
} GROUP BY ?g HAVING (COUNT(?h) >= 3)`, false},
	{"count-star-window", `
SELECT (COUNT(*) AS ?n) WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) >= "2007-08-25T13:00:00" )
}`, false},
	{"count-star-empty-window", `
SELECT (COUNT(*) AS ?n) WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) >= "2007-08-25T20:00:00" )
  FILTER( str(?at) <= "2007-08-25T21:00:00" )
}`, false},
	{"union-confirmations", `
SELECT ?h WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  { ?h noa:hasConfirmation noa:confirmed } UNION { ?h noa:hasConfirmation noa:unconfirmed }
}`, false},
	{"static-only", `
SELECT ?m ?pop WHERE { ?m a gag:Municipality ; gag:hasPopulation ?pop . }`, false},
	{"full-scan", `
SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`, false},
	{"grouped-subselect", `
SELECT ?h ?u WHERE {
  { SELECT ?h (COUNT(?p) AS ?u) WHERE {
      ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; ?p ?o .
    } GROUP BY ?h }
}`, false},
	{"select-star", `
SELECT * WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c . }`, false},
	// Two slice subjects joined through a shared object value: their
	// triples may live in different slices, so this must take the union
	// view (fanning out silently dropped cross-slice pairs before the
	// single-anchor rule).
	{"cross-acquisition-join", `
SELECT ?h1 ?h2 WHERE {
  ?h1 noa:isDerivedFromSensor ?s .
  ?h2 noa:isDerivedFromSensor ?s .
}`, false},
	// A sub-select that does NOT project the anchor: at runtime the
	// inner ?h is a fresh variable (the sub-select exports only ?c), so
	// the outer join is a cross product pairing hotspots with every
	// confidence value — including across slices. Must take the union
	// view (fanning out silently dropped the cross-slice pairs before
	// the projection guard).
	{"subselect-unprojected-anchor", `
SELECT ?h ?c WHERE {
  ?h a noa:Hotspot .
  { SELECT ?c WHERE { ?h noa:hasConfidence ?c } }
}`, false},
	// Same hole through grouping: the anchor is a GROUP BY key but not
	// projected, so the per-group counts cross-join with the outer rows.
	{"subselect-grouped-unprojected-anchor", `
SELECT ?h ?u WHERE {
  ?h a noa:Hotspot .
  { SELECT (COUNT(?p) AS ?u) WHERE {
      ?h a noa:Hotspot ; ?p ?o .
    } GROUP BY ?h }
}`, false},
	// Disjoint windows on two different time variables (of two
	// different subjects): conflating them into one window pruned this
	// to zero shards and returned nothing.
	{"disjoint-windows-two-anchors", `
SELECT ?h1 ?h2 WHERE {
  ?h1 a noa:Hotspot ; noa:hasAcquisitionDateTime ?t1 .
  ?h2 a noa:Hotspot ; noa:hasAcquisitionDateTime ?t2 .
  FILTER( str(?t1) >= "2007-08-25T10:00:00" )
  FILTER( str(?t1) <= "2007-08-25T10:15:00" )
  FILTER( str(?t2) >= "2007-08-25T13:00:00" )
  FILTER( str(?t2) <= "2007-08-25T13:15:00" )
}`, false},
}

var askCorpus = []struct {
	name  string
	query string
	want  bool
}{
	{"ask-hit", `ASK { ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) = "2007-08-25T12:00:00" ) }`, true},
	{"ask-miss", `ASK { ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) = "2007-08-25T23:00:00" ) }`, false},
}

// renderRows canonicalises a result for comparison.
func renderRows(res *stsparql.Result) ([]string, []string) {
	vars := append([]string(nil), res.Vars...)
	sort.Strings(vars)
	rows := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var b strings.Builder
		for _, v := range vars {
			if t, ok := row[v]; ok && !t.IsZero() {
				fmt.Fprintf(&b, "%s=%s|", v, t.String())
			} else {
				fmt.Fprintf(&b, "%s=_|", v)
			}
		}
		rows[i] = b.String()
	}
	return vars, rows
}

func assertEquivalent(t *testing.T, name string, want, got *stsparql.Result, ordered bool) {
	t.Helper()
	wantVars, wantRows := renderRows(want)
	gotVars, gotRows := renderRows(got)
	if strings.Join(wantVars, ",") != strings.Join(gotVars, ",") {
		t.Fatalf("%s: vars mismatch: single=%v sharded=%v", name, wantVars, gotVars)
	}
	if !ordered {
		sort.Strings(wantRows)
		sort.Strings(gotRows)
	}
	if len(wantRows) != len(gotRows) {
		t.Fatalf("%s: row count mismatch: single=%d sharded=%d", name, len(wantRows), len(gotRows))
	}
	for i := range wantRows {
		if wantRows[i] != gotRows[i] {
			t.Fatalf("%s: row %d mismatch:\nsingle:  %s\nsharded: %s", name, i, wantRows[i], gotRows[i])
		}
	}
}

func TestShardEquivalence(t *testing.T) {
	single := strabon.New()
	loadFixture(single)
	for _, slices := range []int{1, 2, 4} {
		sh := newSharded(slices)
		loadFixture(sh)
		t.Run(fmt.Sprintf("slices=%d", slices), func(t *testing.T) {
			for _, tc := range corpus {
				want, err := single.Query(tc.query)
				if err != nil {
					t.Fatalf("%s: single store: %v", tc.name, err)
				}
				got, err := sh.Query(tc.query)
				if err != nil {
					t.Fatalf("%s: sharded store: %v", tc.name, err)
				}
				assertEquivalent(t, tc.name, want, got, tc.ordered)
			}
			for _, tc := range askCorpus {
				got, err := sh.Query(tc.query)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				if len(got.Rows) != 1 {
					t.Fatalf("%s: want 1 ask row, got %d", tc.name, len(got.Rows))
				}
				verdict := got.Rows[0]["ask"].Value == "true"
				if verdict != tc.want {
					t.Fatalf("%s: ask=%v want %v", tc.name, verdict, tc.want)
				}
			}
		})
	}
}

// TestShardUpdateEquivalence applies the refinement-shaped updates —
// a scoped spatial INSERT, a scoped DELETE, an atomic per-subject
// Update and an INSERT DATA with a routing timestamp — to a single and
// a sharded store and compares the full dataset afterwards.
func TestShardUpdateEquivalence(t *testing.T) {
	updates := []string{
		// Municipalities-style scoped insert over a range spanning two
		// buckets.
		`INSERT { ?h noa:isInMunicipality ?m }
WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; strdf:hasGeometry ?hg .
  ?m a gag:Municipality ; strdf:hasGeometry ?mg .
  FILTER( str(?at) >= "2007-08-25T10:30:00" )
  FILTER( str(?at) <= "2007-08-25T11:30:00" )
  FILTER( strdf:anyInteract(?hg, ?mg) )
}`,
		// DeleteInSea-style scoped delete with OPTIONAL against static.
		`DELETE { ?h ?hProperty ?hObject }
WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ;
     strdf:hasGeometry ?hg ; ?hProperty ?hObject .
  FILTER( str(?at) = "2007-08-25T12:15:00" )
  OPTIONAL {
    ?c a coast:Coastline ; strdf:hasGeometry ?cg .
    FILTER( strdf:anyInteract(?hg, ?cg) )
  }
  FILTER( !bound(?c) )
}`,
		// INSERT DATA carrying a routing timestamp (virtual hotspot).
		`INSERT DATA {
  <http://example.org/virt1> a noa:Hotspot ;
    noa:hasAcquisitionDateTime "2007-08-25T12:30:00"^^xsd:dateTime ;
    noa:hasConfidence 0.5 ;
    strdf:hasGeometry "POLYGON ((1 4, 2 4, 2 5, 1 5, 1 4))"^^strdf:WKT .
}`,
	}
	confirm := `DELETE { <%[1]s> noa:hasConfidence ?c }
INSERT { <%[1]s> noa:hasConfidence 1.0 }
WHERE  { <%[1]s> noa:hasConfidence ?c . }`

	single := strabon.New()
	loadFixture(single)
	sh := newSharded(4)
	loadFixture(sh)

	uri := products.HotspotURI(fixtureProducts()[0].Hotspots[0])
	for _, st := range []strabon.API{single, sh} {
		for i, u := range updates {
			var err error
			if i == 0 || i == 1 {
				_, err = st.UpdateScoped(u)
			} else {
				_, err = st.Update(u)
			}
			if err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
		if _, err := st.Update(fmt.Sprintf(confirm, uri)); err != nil {
			t.Fatalf("confirm update: %v", err)
		}
	}

	if single.Len() != sh.Len() {
		t.Fatalf("triple count diverged: single=%d sharded=%d", single.Len(), sh.Len())
	}
	for _, q := range []string{
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`,
		`SELECT ?h ?m WHERE { ?h noa:isInMunicipality ?m . }`,
	} {
		want, err := single.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, q, want, got, false)
	}
}

// TestShardSplitSubjectFallback pins the co-location safety latch: when
// writes place one subject's triples in two different slices
// (conflicting timestamps through the public Update API), fan-out is
// permanently disabled and the union view keeps results identical to a
// single store.
func TestShardSplitSubjectFallback(t *testing.T) {
	single := strabon.New()
	sh := newSharded(4)
	for _, st := range []strabon.API{single, sh} {
		for _, u := range []string{
			`INSERT DATA { <http://example.org/split1> noa:hasAcquisitionDateTime "2007-08-25T10:00:00"^^xsd:dateTime ; noa:hasConfidence 0.9 . }`,
			`INSERT DATA { <http://example.org/split1> noa:hasAcquisitionDateTime "2007-08-25T13:00:00"^^xsd:dateTime . }`,
		} {
			if _, err := st.Update(u); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := `SELECT ?h ?at ?c WHERE { ?h noa:hasAcquisitionDateTime ?at ; noa:hasConfidence ?c . }`
	want, err := single.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 2 {
		t.Fatalf("single store rows = %d, want 2", len(want.Rows))
	}
	assertEquivalent(t, "split-subject join", want, got, false)
	out, err := sh.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard union") {
		t.Fatalf("split-subject store must route everything to the union view:\n%s", out)
	}
}

// TestShardScopedDeleteCrossSlice pins leftover-delete routing: a
// scoped update whose DELETE template names another slice's triple
// (reached through an object variable) must remove it wherever it
// lives, not just in the anchoring slice or the static store.
func TestShardScopedDeleteCrossSlice(t *testing.T) {
	mk := func(st strabon.API) {
		// h1 (10:00 bucket) links to h2 (13:00 bucket) which carries a
		// confirmation; the link crosses slices.
		h1 := []rdf.Triple{
			{S: iri("http://example.org/x1"), P: iri(nsNOA + "hasAcquisitionDateTime"), O: rdf.NewDateTime("2007-08-25T10:00:00")},
			{S: iri("http://example.org/x1"), P: iri(nsNOA + "isExtractedFrom"), O: iri("http://example.org/x2")},
		}
		h2 := []rdf.Triple{
			{S: iri("http://example.org/x2"), P: iri(nsNOA + "hasAcquisitionDateTime"), O: rdf.NewDateTime("2007-08-25T13:00:00")},
			{S: iri("http://example.org/x2"), P: iri(nsNOA + "hasConfirmation"), O: iri(nsNOA + "unconfirmed")},
		}
		st.InsertAll(h1, h2)
	}
	single := strabon.New()
	mk(single)
	sh := newSharded(4)
	mk(sh)
	u := `DELETE { ?x noa:hasConfirmation noa:unconfirmed }
WHERE { ?h noa:isExtractedFrom ?x ; noa:hasAcquisitionDateTime ?at . }`
	for _, st := range []strabon.API{single, sh} {
		if _, err := st.UpdateScoped(u); err != nil {
			t.Fatal(err)
		}
	}
	q := `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`
	want, err := single.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "cross-slice scoped delete", want, got, false)
}

// TestShardGroupWithConflictingTimes pins the multi-bucket-group latch:
// one group carrying acquisition times in two different buckets routes
// whole to the first bucket's slice, so window pruning for the second
// value must be disabled (union fallback) or rows silently vanish.
func TestShardGroupWithConflictingTimes(t *testing.T) {
	group := []rdf.Triple{
		{S: iri("http://example.org/twotimes"), P: iri(nsNOA + "hasAcquisitionDateTime"), O: rdf.NewDateTime("2007-08-25T10:00:00")},
		{S: iri("http://example.org/twotimes"), P: iri(nsNOA + "hasAcquisitionDateTime"), O: rdf.NewDateTime("2007-08-25T13:00:00")},
	}
	single := strabon.New()
	single.InsertAll(group)
	sh := newSharded(4)
	sh.InsertAll(group)
	q := `SELECT ?h ?at WHERE { ?h noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) >= "2007-08-25T12:30:00" ) FILTER( str(?at) <= "2007-08-25T13:30:00" ) }`
	want, err := single.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 1 {
		t.Fatalf("single store rows = %d, want 1", len(want.Rows))
	}
	assertEquivalent(t, "conflicting-times group", want, got, false)
}

// TestShardMalformedTimeLiteral pins the unparseable-timestamp path: a
// time triple whose literal fails to parse routes to the static store,
// and time-pattern queries must then stop fanning out (the static copy
// would be returned once per slice view otherwise).
func TestShardMalformedTimeLiteral(t *testing.T) {
	single := strabon.New()
	loadFixture(single)
	sh := newSharded(4)
	loadFixture(sh)
	bad := `INSERT DATA { <http://example.org/badtime> noa:hasAcquisitionDateTime "25/08/2007 15:20" . }`
	for _, st := range []strabon.API{single, sh} {
		if _, err := st.Update(bad); err != nil {
			t.Fatal(err)
		}
	}
	q := `SELECT ?h ?at WHERE { ?h noa:hasAcquisitionDateTime ?at . }`
	want, err := single.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "malformed time literal", want, got, false)
}

// TestShardSubselectFilterScoping pins window-pruning variable scoping:
// a filter inside a sub-select constraining a LOCAL variable that
// happens to share an outer acquisition-time variable's name must not
// prune the fan-out — the inner ?at is a different variable (the
// sub-select only exports ?m).
func TestShardSubselectFilterScoping(t *testing.T) {
	founded := []rdf.Triple{
		{S: iri("http://example.org/mun0"), P: iri("http://example.org/founded"),
			O: rdf.NewLiteral("2007-08-25T10:10:00")},
	}
	single := strabon.New()
	loadFixture(single)
	single.LoadTriples(founded)
	sh := newSharded(4)
	loadFixture(sh)
	sh.LoadTriples(founded)

	q := `SELECT ?h ?m WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  { SELECT ?m WHERE {
      ?m a gag:Municipality ; <http://example.org/founded> ?at .
      FILTER( str(?at) >= "2007-08-25T10:00:00" )
      FILTER( str(?at) <= "2007-08-25T10:30:00" )
    } }
}`
	want, err := single.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("fixture produced no rows; the test is vacuous")
	}
	assertEquivalent(t, "subselect filter scoping", want, got, false)

	out, err := sh.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard fan-out: 4/4 slices") {
		t.Fatalf("inner-scope filter must not prune the outer fan-out:\n%s", out)
	}
}

// TestShardExplainPruning pins the acceptance criterion: a time-window
// query's Explain names fewer slices than exist, a window-free query
// names all of them, and the union fallback is labelled as such.
func TestShardExplainPruning(t *testing.T) {
	sh := newSharded(4)
	loadFixture(sh)

	out, err := sh.Explain(`
SELECT ?h WHERE {
  ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) >= "2007-08-25T10:00:00" )
  FILTER( str(?at) <= "2007-08-25T10:59:00" )
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard fan-out: 1/4 slices") {
		t.Fatalf("windowed query not pruned to 1/4:\n%s", out)
	}

	out, err = sh.Explain(`SELECT ?h WHERE { ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard fan-out: 4/4 slices") {
		t.Fatalf("unconstrained query should fan out to all slices:\n%s", out)
	}

	out, err = sh.Explain(`SELECT ?m WHERE { ?m a gag:Municipality . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard union") {
		t.Fatalf("static-only query should use the union view:\n%s", out)
	}

	// Joining two slice subjects via a shared object value proves no
	// co-location: must not fan out.
	out, err = sh.Explain(`SELECT ?h1 ?h2 WHERE {
  ?h1 noa:isDerivedFromSensor ?s . ?h2 noa:isDerivedFromSensor ?s . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard union") {
		t.Fatalf("cross-acquisition join must use the union view:\n%s", out)
	}

	// A sub-select that hides the anchor cross-joins across slices:
	// union view. One that projects it stays decomposable: fan-out.
	out, err = sh.Explain(`SELECT ?h ?c WHERE {
  ?h a noa:Hotspot . { SELECT ?c WHERE { ?h noa:hasConfidence ?c } } }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard union") {
		t.Fatalf("unprojected-anchor sub-select must use the union view:\n%s", out)
	}
	out, err = sh.Explain(`SELECT ?h ?u WHERE {
  { SELECT ?h (COUNT(?p) AS ?u) WHERE {
      ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at ; ?p ?o .
    } GROUP BY ?h } }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shard fan-out: 4/4 slices") {
		t.Fatalf("anchor-projecting grouped sub-select should fan out:\n%s", out)
	}

	out, err = sh.Explain(`
SELECT ?s (COUNT(?h) AS ?n) WHERE {
  ?h a noa:Hotspot ; noa:isDerivedFromSensor ?s ; noa:hasAcquisitionDateTime ?at .
} GROUP BY ?s`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "merge=partial-aggregate") {
		t.Fatalf("grouped query should recombine partial aggregates:\n%s", out)
	}
}

// TestShardStatsAndCursors covers the plumbing: per-shard stats, plan
// cache hits on repeats, and early cursor Close releasing the shard
// read locks (a subsequent write must not deadlock).
func TestShardStatsAndCursors(t *testing.T) {
	sh := newSharded(4)
	loadFixture(sh)

	ss := sh.ShardStats()
	if len(ss) != 5 {
		t.Fatalf("want static+4 shard stats, got %d", len(ss))
	}
	populated := 0
	for _, st := range ss[1:] {
		if st.Triples > 0 {
			populated++
			if st.Range == "" {
				t.Fatalf("populated shard %s missing range", st.Name)
			}
			if st.DictEntries == 0 || st.DictBytes == 0 {
				t.Fatalf("populated shard %s missing dictionary stats: %+v", st.Name, st)
			}
		}
	}
	if populated != 4 {
		t.Fatalf("want 4 populated slices, got %d", populated)
	}
	entries, bytes := sh.DictStats()
	var sumE, sumB int
	for _, st := range ss {
		sumE += st.DictEntries
		sumB += st.DictBytes
	}
	if entries != sumE || bytes != sumB {
		t.Fatalf("DictStats (%d, %d) != sum of shard stats (%d, %d)", entries, bytes, sumE, sumB)
	}

	q := `SELECT ?h WHERE { ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at .
  FILTER( str(?at) >= "2007-08-25T10:00:00" ) FILTER( str(?at) <= "2007-08-25T10:45:00" ) }`
	if _, err := sh.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Query(q); err != nil {
		t.Fatal(err)
	}
	if ps := sh.PlanStats(); ps.Hits == 0 {
		t.Fatalf("repeated query should hit the plan cache: %+v", ps)
	}

	// Early Close: take two rows, close, then write — a leaked read
	// lock would deadlock the insert.
	cur, err := sh.QueryStream(`SELECT ?h ?at WHERE { ?h a noa:Hotspot ; noa:hasAcquisitionDateTime ?at . }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(); !ok {
		t.Fatal("no first row")
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	p := &products.Product{Sensor: "MSG1", Chain: "test", AcquiredAt: day.Add(14 * time.Hour)}
	p.Hotspots = append(p.Hotspots, products.Hotspot{
		ID: "late_0", Geometry: geom.NewSquare(3, 5, 0.5), Confidence: 1.0,
		AcquiredAt: p.AcquiredAt, Sensor: "MSG1", Chain: "test", Producer: "noa",
	})
	done := make(chan struct{})
	go func() {
		sh.InsertAll(p.Triples())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("insert after closed cursor deadlocked: read locks leaked")
	}
}
