// Vaultexplore: demonstrates the data-vault workflow of Section 3.1.1 —
// raw HRIT files are attached "as-is" (metadata-only scan), and pixel
// data is materialised lazily by SciQL queries through the registered
// hrit_load_image table function. The example prints vault statistics
// before and after querying to make the laziness visible.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/auxdata"
	"repro/internal/hrit"
	"repro/internal/sciql"
	"repro/internal/seviri"
	"repro/internal/vault"
)

func main() {
	// Build a small raw archive on disk (what cmd/sevirigen does).
	dir, err := os.MkdirTemp("", "hrit-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	world := auxdata.Generate(42)
	sc := seviri.GenerateScenario(world, 43, seviri.DefaultScenarioConfig())
	sim := seviri.NewSimulator(sc)
	from := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	for _, at := range seviri.AcquisitionTimes(seviri.MSG1, from, 15*time.Minute) {
		acq, err := sim.Acquire(seviri.MSG1, at, 4, true)
		if err != nil {
			log.Fatal(err)
		}
		for ch, segs := range acq.Segments {
			for i, raw := range segs {
				name := fmt.Sprintf("%s/%s_%s_seg%d.hrit", dir, ch, at.Format("150405"), i)
				if err := os.WriteFile(name, raw, 0o644); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Attach the archive: metadata only, no pixel decode.
	v := vault.New(4)
	n, err := v.AttachDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attached %d segment files; stats: %+v\n", n, v.Stats())
	for _, ts := range v.Acquisitions(hrit.ChannelIR039) {
		fmt.Printf("  acquisition %s complete=%v\n", ts.Format(time.RFC3339),
			v.Complete(hrit.ChannelIR039, ts))
	}

	// Query through SciQL: the first touch materialises the array.
	engine := sciql.NewEngine()
	v.Register(engine)
	uri := vault.URI(hrit.ChannelIR039, from)
	frame, err := engine.Exec(fmt.Sprintf(
		`SELECT v FROM hrit_load_image('%s') AS img WHERE x >= 20 AND x < 120 AND y >= 20 AND y < 100`, uri))
	if err != nil {
		log.Fatal(err)
	}
	d, err := frame.Dense("v")
	if err != nil {
		log.Fatal(err)
	}
	s := d.Summary()
	fmt.Printf("cropped window %dx%d: T in [%.1f, %.1f] K, mean %.1f K\n",
		d.Width(), d.Height(), s.Min, s.Max, s.Mean)
	fmt.Printf("after first query:  %+v\n", v.Stats())

	// A second query over the same acquisition hits the cache.
	if _, err := engine.Exec(fmt.Sprintf(
		`SELECT v FROM hrit_load_image('%s') AS img`, uri)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after second query: %+v (cache hit, no new load)\n", v.Stats())
}
