// Quickstart: one MSG/SEVIRI acquisition end to end — synthetic downlink,
// data-vault ingestion, the SciQL processing chain, and stSPARQL
// refinement — in under a hundred lines.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/seviri"
	"repro/internal/strabon"
)

func main() {
	// A deterministic synthetic world + fire scenario (the paper's severe
	// fire days of August 2007).
	cfg := seviri.DefaultScenarioConfig()
	svc, err := core.NewService(42, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Service one 5-minute MSG1 acquisition at scenario midday.
	at := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	rep, err := svc.Step(seviri.MSG1, at)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("acquisition %s (%s)\n", at.Format(time.RFC3339), rep.Sensor)
	fmt.Printf("  chain time:        %v (deadline %v, met: %v)\n",
		rep.ChainTime.Round(time.Millisecond), seviri.MSG1.Cadence, rep.DeadlineMet)
	fmt.Printf("  hotspots detected: %d\n", rep.RawHotspot)
	fmt.Printf("  after refinement:  %d\n", rep.Refined)
	for _, op := range rep.RefineOps {
		fmt.Printf("    %-18s %8v\n", op.Op, op.Duration.Round(time.Microsecond))
	}

	// Query the refined products back through the canonical streaming
	// surface (the materialising wrapper over QueryStreamCtx).
	res, err := strabon.MaterialiseQuery(context.Background(), svc.Strabon, `
SELECT ?h ?g ?conf WHERE {
  ?h a noa:Hotspot ;
     noa:hasConfidence ?conf ;
     strdf:hasGeometry ?g .
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored hotspots:\n")
	for _, row := range res.Rows {
		g, _ := geom.ParseWKT(row["g"].Value)
		c := geom.Centroid(g)
		fmt.Printf("  %-60s conf=%s at (%.3f, %.3f)\n",
			shorten(row["h"].Value), row["conf"].Value, c.X, c.Y)
	}
}

func shorten(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}
