// Thematicmap: runs the five stSPARQL queries of Section 3.2.4 against a
// serviced store and renders the Figure 6 overlay map as SVG plus a
// GeoJSON export for GIS tools (the paper's QGIS / GoogleEarth workflow).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/strabon"
)

func main() {
	svc, prods, err := experiments.CollectProducts(42, 15*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, p := range prods {
		total += len(p.Hotspots)
	}
	fmt.Printf("serviced %d acquisitions, %d hotspots stored\n", len(prods), total)

	window := geom.Envelope{MinX: 20.5, MinY: 36.0, MaxX: 24.5, MaxY: 39.5}
	from := time.Date(2007, 8, 24, 0, 0, 0, 0, time.UTC)

	// Show the five queries and their result sizes.
	for name, q := range experiments.Figure6Queries(window, from, from.Add(24*time.Hour)) {
		res, d, err := strabon.TimedQuery(svc.Strabon, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %-15s -> %4d rows in %v\n", name, len(res.Rows), d.Round(time.Millisecond))
	}

	m, err := experiments.Figure6(svc, window, from, from.Add(24*time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("thematicmap.svg", []byte(m.SVG(900)), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("thematicmap.geojson", []byte(m.GeoJSON()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote thematicmap.svg and thematicmap.geojson")
}
