// Firefront: the paper's motivating scenario — emergency managers
// watching a fire front evolve in near real time. The example services a
// multi-hour MSG1 stream, tracks each ground-truth fire's detected
// footprint acquisition by acquisition, and reports growth, confidence
// upgrades from the time-persistence heuristic, and the nearest fire
// station (from the LinkedGeoData layer) for resource allocation.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/seviri"
)

func main() {
	cfg := seviri.DefaultScenarioConfig()
	svc, err := core.NewService(7, cfg)
	if err != nil {
		log.Fatal(err)
	}
	world := svc.Sim.Scenario.World

	// Pick the biggest scenario fire and watch it from ignition.
	var fire seviri.FireEvent
	for _, f := range svc.Sim.Scenario.Fires {
		if f.PeakRadiusKm > fire.PeakRadiusKm {
			fire = f
		}
	}
	fmt.Printf("watching fire %d at (%.3f, %.3f), ignition %s\n",
		fire.ID, fire.Center.X, fire.Center.Y, fire.Start.Format("15:04"))

	// Nearest fire station (the added-value layer of Section 2).
	bestD := 1e18
	bestName := "none"
	for _, fs := range world.FireStations {
		if d := fs.Location.DistanceTo(fire.Center); d < bestD {
			bestD, bestName = d, fs.Name
		}
	}
	fmt.Printf("nearest fire station: %s (%.0f km)\n\n", bestName, bestD*88)

	watch := geom.NewSquare(fire.Center.X, fire.Center.Y, 0.5)
	from := fire.Start.Add(-10 * time.Minute)
	for _, at := range seviri.AcquisitionTimes(seviri.MSG1, from, 2*time.Hour) {
		if _, err := svc.Step(seviri.MSG1, at); err != nil {
			log.Fatal(err)
		}
		res, err := svc.Refiner.CurrentHotspots(at)
		if err != nil {
			log.Fatal(err)
		}
		var frontArea float64
		pixels, confirmed := 0, 0
		for _, row := range res.Rows {
			g, err := geom.ParseWKT(row["g"].Value)
			if err != nil {
				continue
			}
			if !geom.Intersects(g, watch) {
				continue
			}
			pixels++
			frontArea += geom.Area(g)
			if c, _ := row["conf"].Float(); c >= 1.0 {
				confirmed++
			}
		}
		truthKm := fire.RadiusKmAt(at)
		fmt.Printf("%s  front: %2d px (%2d confirmed)  ~%5.0f km²   truth radius %4.1f km\n",
			at.Format("15:04"), pixels, confirmed, frontArea*88*111, truthKm)
	}
}
