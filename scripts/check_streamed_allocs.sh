#!/usr/bin/env bash
# Allocation gate for the batch execution engine: fails when a gated
# benchmark allocates more than 1.5x its committed baseline. allocs/op
# is scheduling-independent, so even the CI smoke benchtime measures it
# exactly — a regression here means a per-row allocation crept back
# into the batch pipeline.
#
# Gated benchmarks:
#   BenchmarkStreamedSelect/full/streamed (internal/strabon) — the
#     single-store streaming drain, the purest view of per-batch cost.
#   BenchmarkShardedQueries/single (internal/shard) — the join-heavy
#     spatial workload on one store: scan + hash join + spatial filter,
#     exercising the ID-native path end to end.
#
# Baselines are committed next to the package they measure and hold the
# allocs/op of a -benchtime=3x run (short runs amortise plan compilation
# over fewer iterations, so the baseline must be measured the same way
# this script measures).
set -euo pipefail

fail=0

check() {
    local pkg="$1" bench="$2" baseline_file="$3"
    if [ ! -f "$baseline_file" ]; then
        echo "missing baseline file $baseline_file" >&2
        echo "run the bench once and commit its allocs/op:" >&2
        echo "  go test -run '^\$' -bench '$bench' -benchtime=3x -benchmem $pkg" >&2
        exit 1
    fi
    local baseline
    baseline=$(tr -dc 0-9 <"$baseline_file")
    [ -n "$baseline" ] || { echo "empty baseline in $baseline_file" >&2; exit 1; }

    local out
    out=$(go test -run '^$' -bench "$bench" -benchtime=3x -benchmem "$pkg")
    echo "$out"

    local allocs
    allocs=$(echo "$out" | awk -v b="${bench//\//\\/}" '$0 ~ b {
        for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
    }' | head -1)
    [ -n "$allocs" ] || { echo "could not parse allocs/op for $bench" >&2; exit 1; }

    local limit=$((baseline * 3 / 2))
    if [ "$allocs" -gt "$limit" ]; then
        echo "FAIL: $bench allocs/op = $allocs exceeds $limit (baseline $baseline +50%)" >&2
        fail=1
    else
        echo "OK: $bench allocs/op = $allocs within $limit (baseline $baseline +50%)"
    fi
}

check ./internal/strabon 'BenchmarkStreamedSelect/full/streamed' \
    internal/strabon/testdata/streamed_select_allocs.baseline
check ./internal/shard 'BenchmarkShardedQueries/single' \
    internal/shard/testdata/sharded_single_allocs.baseline

exit "$fail"
