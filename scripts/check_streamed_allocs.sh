#!/usr/bin/env bash
# Allocation gate for the batch execution engine: fails when
# BenchmarkStreamedSelect/full/streamed allocates more than 1.5x the
# committed baseline (internal/strabon/testdata/streamed_select_allocs
# .baseline). allocs/op is scheduling-independent, so even the CI smoke
# benchtime measures it exactly — a regression here means a per-row
# allocation crept back into the batch pipeline.
set -euo pipefail

baseline_file="internal/strabon/testdata/streamed_select_allocs.baseline"
if [ ! -f "$baseline_file" ]; then
    echo "missing baseline file $baseline_file" >&2
    echo "run the bench once and commit its allocs/op:" >&2
    echo "  go test -run '^\$' -bench 'BenchmarkStreamedSelect/full/streamed' -benchmem ./internal/strabon" >&2
    exit 1
fi
baseline=$(tr -dc 0-9 <"$baseline_file")
[ -n "$baseline" ] || { echo "empty baseline in $baseline_file" >&2; exit 1; }

out=$(go test -run '^$' -bench 'BenchmarkStreamedSelect/full/streamed' -benchtime=3x -benchmem ./internal/strabon)
echo "$out"

allocs=$(echo "$out" | awk '/BenchmarkStreamedSelect\/full\/streamed/ {
    for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
}')
[ -n "$allocs" ] || { echo "could not parse allocs/op from benchmark output" >&2; exit 1; }

limit=$((baseline * 3 / 2))
if [ "$allocs" -gt "$limit" ]; then
    echo "FAIL: full/streamed allocs/op = $allocs exceeds $limit (baseline $baseline +50%)" >&2
    exit 1
fi
echo "OK: full/streamed allocs/op = $allocs within $limit (baseline $baseline +50%)"
