#!/usr/bin/env bash
# Runs the headline engine benchmarks (streamed-select cursor path,
# sharded/single windowed spatial join, concurrent served queries) with
# -benchmem and records them machine-readably in BENCH_engine.json —
# the engine-level counterpart of BENCH_serve.json. Each entry carries
# wall time, bytes and allocations per operation; allocs/op is
# scheduling-independent and is the number the alloc gate
# (scripts/check_streamed_allocs.sh) polices.
set -euo pipefail

out_file="${1:-BENCH_engine.json}"

run() { # pkg bench_regex
    go test -run '^$' -bench "$2" -benchmem "$1"
}

raw=$(
    run ./internal/strabon 'BenchmarkStreamedSelect'
    run ./internal/shard 'BenchmarkShardedQueries'
    run ./internal/strabon 'BenchmarkServedQueries'
)
echo "$raw"

echo "$raw" | awk -v go_version="$(go env GOVERSION)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "B/op") bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    names[n] = name; its[n] = iters
    nss[n] = ns; bs[n] = bytes; as[n] = allocs
    n++
}
END {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", names[i], its[i], nss[i]
        if (bs[i] != "") printf ", \"bytes_per_op\": %s", bs[i]
        if (as[i] != "") printf ", \"allocs_per_op\": %s", as[i]
        printf "}%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' >"$out_file"

echo "wrote $out_file"
