# Local invocations of exactly what CI runs (.github/workflows/ci.yml),
# so the two can't drift.

GO ?= go

.PHONY: build test bench bench-endpoint bench-stream bench-shard bench-batch bench-serve bench-engine alloc-gate lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...
	$(GO) test -shuffle=on ./...
	$(GO) test -race -count=2 -run 'TestEndpointConcurrent|TestConcurrentEndpointSmoke|TestEndpointStreamsDuringWrites' ./internal/strabon
	$(GO) test -race -count=2 -run 'TestShardStreamsDuringWrites|TestShardedPipelineMatchesSingle|TestShardResultCacheInvalidation' ./internal/shard

# Full benchmark sweep; CI runs the 1x smoke variant of the end-to-end
# and pipeline benchmarks plus the served-query and streamed-select
# smokes.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Concurrent endpoint read throughput across core counts.
bench-endpoint:
	$(GO) test -run '^$$' -bench 'BenchmarkServedQueries' -cpu 1,4,8 ./internal/strabon

# Cursor-path allocation behaviour: materialised vs streamed vs LIMIT
# pushdown over a 10k-row SELECT.
bench-stream:
	$(GO) test -run '^$$' -bench 'BenchmarkStreamedSelect' -benchmem ./internal/strabon

# Sharded vs single-store throughput on the time-constrained workload
# while a writer appends to the live slice. Like the pipeline bench, the
# -cpu spread only shows on multicore hosts (dev container is 1-CPU).
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedQueries' -cpu 1,4 ./internal/shard

# Batch-engine allocation behaviour: the fully-drained streamed SELECT
# and the windowed shard join, with -benchmem — the two workloads the
# columnar pipeline is measured on.
bench-batch:
	$(GO) test -run '^$$' -bench 'BenchmarkStreamedSelect' -benchmem ./internal/strabon
	$(GO) test -run '^$$' -bench 'BenchmarkShardedQueries' -benchmem ./internal/shard

# Closed-loop serving smoke: clients replay the hot/cold thematic mix
# over HTTP against a live writer with the result cache + admission
# gate on, reporting p50/p99 and the hot-set hit ratio — and failing
# when the hit ratio collapses below 0.5 (a keying or invalidation
# regression in the serving tier). -json writes the machine-readable
# latency/hit-ratio report (BENCH_serve.json holds the committed
# baseline); -ops-addr stands up the ops surface and self-checks that
# /metrics scrapes cleanly with every expected family present.
bench-serve:
	$(GO) run ./cmd/benchserve -clients 4 -requests 200 -min-hot-hit 0.5 \
		-json BENCH_serve.json -ops-addr 127.0.0.1:0

# Headline engine benchmarks (streamed select, sharded join, served
# queries) recorded machine-readably in BENCH_engine.json — the
# engine-level counterpart of BENCH_serve.json.
bench-engine:
	./scripts/bench_engine.sh BENCH_engine.json

# Fails if a gated benchmark's allocs/op regresses 1.5x above its
# committed baseline (what CI runs): full/streamed in internal/strabon
# and the single-store sharded-queries case in internal/shard.
alloc-gate:
	./scripts/check_streamed_allocs.sh

lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/reprolint ./...

fmt:
	gofmt -w .
