# Local invocations of exactly what CI runs (.github/workflows/ci.yml),
# so the two can't drift.

GO ?= go

.PHONY: build test bench lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark sweep; CI runs the 1x smoke variant of the end-to-end
# and pipeline benchmarks.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .
