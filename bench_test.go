// Package repro holds the benchmark harness regenerating the paper's
// evaluation (Section 4): one benchmark per table and figure, plus the
// ablation benchmarks for the design choices called out in DESIGN.md.
// Run with:
//
//	go test -bench=. -benchmem
//
// The per-iteration workloads are scaled-down versions of the paper's
// full runs; cmd/benchtables runs the full-scale protocols and prints the
// paper-style tables.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/auxdata"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hrit"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/seviri"
	"repro/internal/strabon"
	"repro/internal/vault"
)

// --- Table 1: thematic accuracy protocol ---

// BenchmarkTable1Protocol times one full accuracy evaluation day:
// MSG servicing inside the MODIS merge windows plus the overlay protocol.
func BenchmarkTable1Protocol(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(42, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: per-image chain processing times ---

func table2Setup(b *testing.B) (*core.Service, *vault.Vault, []time.Time) {
	b.Helper()
	cfg := seviri.DefaultScenarioConfig()
	cfg.Start = time.Date(2010, 8, 22, 0, 0, 0, 0, time.UTC)
	cfg.Days = 1
	svc, err := core.NewService(42, cfg)
	if err != nil {
		b.Fatal(err)
	}
	v := vault.New(64)
	times := seviri.AcquisitionTimes(seviri.MSG1, cfg.Start.Add(10*time.Hour), 15*time.Minute)
	for _, at := range times {
		acq, err := svc.Sim.Acquire(seviri.MSG1, at, 4, true)
		if err != nil {
			b.Fatal(err)
		}
		if err := core.IngestAcquisition(v, acq); err != nil {
			b.Fatal(err)
		}
	}
	return svc, v, times
}

// BenchmarkTable2LegacyChain times the imperative baseline per image.
func BenchmarkTable2LegacyChain(b *testing.B) {
	svc, v, times := table2Setup(b)
	chain := core.NewLegacyChain(v, svc.Sim.Transform())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chain.Process("MSG1", times[i%len(times)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2SciQLChain times the declarative SciQL chain per image.
func BenchmarkTable2SciQLChain(b *testing.B) {
	svc, v, times := table2Setup(b)
	chain := core.NewSciQLChain(v, svc.Sim.Transform())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chain.Process("MSG1", times[i%len(times)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8: refinement operation response times ---

func figure8Setup(b *testing.B) (*core.Service, *refine.Runner, []*core.AcquisitionReport) {
	b.Helper()
	cfg := seviri.DefaultScenarioConfig()
	cfg.Days = 1
	svc, err := core.NewService(42, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-load an archive so the store resembles the paper's multi-year
	// hotspot collection.
	from := cfg.Start.Add(11 * time.Hour)
	if err := svc.RunWindow(seviri.MSG1, from, 30*time.Minute); err != nil {
		b.Fatal(err)
	}
	return svc, svc.Refiner, nil
}

// benchRefineOp times one refinement operation against a stored product.
func benchRefineOp(b *testing.B, run func(*refine.Runner, *core.Service, time.Time) error) {
	svc, runner, _ := figure8Setup(b)
	at := svc.PlainProducts[len(svc.PlainProducts)-1].AcquiredAt
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(runner, svc, at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8Municipalities times the paper's slowest operation.
func BenchmarkFigure8Municipalities(b *testing.B) {
	benchRefineOp(b, func(r *refine.Runner, svc *core.Service, at time.Time) error {
		_, err := r.Municipalities(svc.PlainProducts[len(svc.PlainProducts)-1])
		return err
	})
}

// BenchmarkFigure8DeleteInSea times the sea-hotspot deletion update.
func BenchmarkFigure8DeleteInSea(b *testing.B) {
	benchRefineOp(b, func(r *refine.Runner, svc *core.Service, at time.Time) error {
		_, err := r.DeleteInSea(svc.PlainProducts[len(svc.PlainProducts)-1])
		return err
	})
}

// BenchmarkFigure8InvalidForFires times the land-cover consistency update.
func BenchmarkFigure8InvalidForFires(b *testing.B) {
	benchRefineOp(b, func(r *refine.Runner, svc *core.Service, at time.Time) error {
		_, err := r.InvalidForFires(svc.PlainProducts[len(svc.PlainProducts)-1])
		return err
	})
}

// BenchmarkFigure8RefineInCoast times the coastline clipping update.
func BenchmarkFigure8RefineInCoast(b *testing.B) {
	benchRefineOp(b, func(r *refine.Runner, svc *core.Service, at time.Time) error {
		_, err := r.RefineInCoast(svc.PlainProducts[len(svc.PlainProducts)-1])
		return err
	})
}

// BenchmarkFigure8TimePersistence times the persistence heuristic.
func BenchmarkFigure8TimePersistence(b *testing.B) {
	benchRefineOp(b, func(r *refine.Runner, svc *core.Service, at time.Time) error {
		_, err := r.TimePersistence(svc.PlainProducts[len(svc.PlainProducts)-1])
		return err
	})
}

// BenchmarkFigure8Store times product RDF-ization + bulk load.
func BenchmarkFigure8Store(b *testing.B) {
	svc, runner, _ := figure8Setup(b)
	p := svc.PlainProducts[len(svc.PlainProducts)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.StoreProduct(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 2/6/7: map generation ---

// BenchmarkFigure6ThematicMap times the five-query overlay map build.
func BenchmarkFigure6ThematicMap(b *testing.B) {
	svc, _, err := experiments.CollectProducts(42, 10*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	window := auxdata.Region
	from := time.Date(2007, 8, 24, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := experiments.Figure6(svc, window, from, from.Add(24*time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		if len(m.SVG(800)) == 0 {
			b.Fatal("empty SVG")
		}
	}
}

// --- Ablations (DESIGN.md section 4) ---

// BenchmarkAblationRTreeOn measures the spatial join with index pruning.
func BenchmarkAblationRTreeOn(b *testing.B) {
	benchSpatialJoin(b, strabon.New())
}

// BenchmarkAblationRTreeOff measures the same join with full scans.
func BenchmarkAblationRTreeOff(b *testing.B) {
	benchSpatialJoin(b, strabon.NewWithoutIndex())
}

func benchSpatialJoin(b *testing.B, st *strabon.Store) {
	b.Helper()
	world := auxdata.Generate(42)
	st.LoadTriples(world.AllTriples())
	// One hotspot joined against every municipality.
	st.LoadTriples([]rdf.Triple{
		{S: rdf.NewIRI("http://e/h1"), P: rdf.NewIRI(rdf.RDFType),
			O: rdf.NewIRI("http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Hotspot")},
		{S: rdf.NewIRI("http://e/h1"),
			P: rdf.NewIRI("http://strdf.di.uoa.gr/ontology#hasGeometry"),
			O: rdf.NewGeometry("POLYGON ((22.3 38.3, 22.34 38.3, 22.34 38.34, 22.3 38.34, 22.3 38.3))")},
	})
	q := `
SELECT ?m WHERE {
  ?h a noa:Hotspot ; strdf:hasGeometry ?hg .
  ?m a gag:Municipality ; strdf:hasGeometry ?mg .
  FILTER( strdf:anyInteract(?hg, ?mg) )
}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWindowSAT measures the summed-area-table window mean.
func BenchmarkAblationWindowSAT(b *testing.B) {
	img := benchImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.WindowMean(1)
	}
}

// BenchmarkAblationWindowNaive measures the per-pixel rescan variant.
func BenchmarkAblationWindowNaive(b *testing.B) {
	img := benchImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.WindowMeanNaive(1)
	}
}

func benchImage() *array.Dense {
	img := array.New(150, 125)
	for i := range img.Values() {
		img.Values()[i] = float64(i % 317)
	}
	return img
}

// BenchmarkAblationVaultLazy measures attach-then-first-touch loading.
func BenchmarkAblationVaultLazy(b *testing.B) {
	files := benchHRITFiles(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vault.New(4)
		for j, raw := range files {
			if err := v.AttachBytes(fmt.Sprintf("s%d", j), raw); err != nil {
				b.Fatal(err)
			}
		}
		// Touch one of the four attached acquisitions: lazy loading pays
		// only for what queries touch.
		if _, err := v.Load(hrit.ChannelIR039, benchBase); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVaultEager measures decode-everything-at-attach.
func BenchmarkAblationVaultEager(b *testing.B) {
	files := benchHRITFiles(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vault.New(8)
		for j, raw := range files {
			if err := v.AttachBytes(fmt.Sprintf("s%d", j), raw); err != nil {
				b.Fatal(err)
			}
		}
		for _, ts := range v.Acquisitions(hrit.ChannelIR039) {
			if _, err := v.Load(hrit.ChannelIR039, ts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

var benchBase = time.Date(2010, 8, 22, 12, 0, 0, 0, time.UTC)

func benchHRITFiles(b *testing.B, compressed bool) [][]byte {
	b.Helper()
	var out [][]byte
	counts := make([]uint16, 164*137)
	for i := range counts {
		counts[i] = uint16((i * 13) % 1024)
	}
	for a := 0; a < 4; a++ {
		segs, err := hrit.Split(counts, 164, 4, hrit.SegmentHeader{
			ProductName: "MSG1-SEVIRI",
			Channel:     hrit.ChannelIR039,
			Timestamp:   benchBase.Add(time.Duration(a) * 5 * time.Minute),
			Compressed:  compressed,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range segs {
			raw, err := hrit.Encode(s)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, raw)
		}
	}
	return out
}

// BenchmarkAblationHRITCompressed measures decode cost with the wavelet
// stage on.
func BenchmarkAblationHRITCompressed(b *testing.B) {
	benchHRITDecode(b, true)
}

// BenchmarkAblationHRITPlain measures decode cost with plain 10-bit
// packing.
func BenchmarkAblationHRITPlain(b *testing.B) {
	benchHRITDecode(b, false)
}

func benchHRITDecode(b *testing.B, compressed bool) {
	b.Helper()
	files := benchHRITFiles(b, compressed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hrit.Decode(files[i%len(files)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDictionary measures dictionary-encoded pattern
// matching vs. the term-level API.
func BenchmarkAblationDictionary(b *testing.B) {
	s := rdf.NewStore()
	for i := 0; i < 20000; i++ {
		s.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://e/s%d", i%500)),
			P: rdf.NewIRI(fmt.Sprintf("http://e/p%d", i%7)),
			O: rdf.NewIRI(fmt.Sprintf("http://e/o%d", i)),
		})
	}
	p3, _ := s.Dict().Lookup(rdf.NewIRI("http://e/p3"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Match(0, p3, 0, func(rdf.EncodedTriple) bool { n++; return true })
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkEndToEndAcquisition measures one full serviced acquisition:
// downlink, vault, chain, refinement — the paper's 5-minute budget.
func BenchmarkEndToEndAcquisition(b *testing.B) {
	cfg := seviri.DefaultScenarioConfig()
	cfg.Days = 1
	svc, err := core.NewService(42, cfg)
	if err != nil {
		b.Fatal(err)
	}
	at := cfg.Start.Add(12 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Step(seviri.MSG1, at.Add(time.Duration(i)*seviri.MSG1.Cadence)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Concurrent acquisition pipeline (pipeline.go) ---

// benchmarkPipelineWorkers measures end-to-end acquisition throughput of
// RunWindow at a given worker count: every iteration services a fresh
// one-hour MSG1 window (12 acquisitions) and reports acquisitions/sec.
// Comparing the Workers variants tracks the pipeline speedup in the bench
// trajectory.
func benchmarkPipelineWorkers(b *testing.B, workers int) {
	cfg := seviri.DefaultScenarioConfig()
	cfg.Days = 1
	const acquisitions = 12
	span := time.Duration(acquisitions) * seviri.MSG1.Cadence
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		svc, err := core.NewService(42, cfg)
		if err != nil {
			b.Fatal(err)
		}
		svc.Workers = workers
		b.StartTimer()
		start := time.Now()
		if err := svc.RunWindow(seviri.MSG1, cfg.Start.Add(12*time.Hour), span); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		b.StopTimer()
		if len(svc.Reports) != acquisitions {
			b.Fatalf("reports = %d, want %d", len(svc.Reports), acquisitions)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(b.N*acquisitions)/elapsed.Seconds(), "acq/s")
}

func BenchmarkPipelineWorkers1(b *testing.B) { benchmarkPipelineWorkers(b, 1) }
func BenchmarkPipelineWorkers4(b *testing.B) { benchmarkPipelineWorkers(b, 4) }
func BenchmarkPipelineWorkers8(b *testing.B) { benchmarkPipelineWorkers(b, 8) }
